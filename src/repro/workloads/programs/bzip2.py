"""401.bzip2 — block compression.

The original's phases are run-length encoding, Burrows–Wheeler-flavoured
reordering and entropy coding: byte-granularity loops mixing loads,
compares and table updates. This miniature implements RLE plus
move-to-front plus a frequency-count "entropy" pass over a synthetic
block.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 401.bzip2 miniature: RLE + move-to-front + frequency counting.
int block[2048];
int rle[2048];
int mtf_table[256];
int freq[256];

int generate_block(int n, int seed) {
  int i = 0;
  int x = seed;
  while (i < n) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int sym = x % 64;
    x = (x * 1103515245 + 12345) & 2147483647;
    int run = 1 + x % 6;
    int j;
    for (j = 0; j < run; j++) {
      if (i < n) {
        block[i] = sym;
        i++;
      }
    }
  }
  return n;
}

int run_length_encode(int n) {
  int out = 0;
  int i = 0;
  // Hot loop: detect runs, emit (symbol, length) pairs.
  while (i < n) {
    int sym = block[i];
    int run = 1;
    while (i + run < n && block[i + run] == sym && run < 255) {
      run++;
    }
    rle[out] = sym;
    rle[out + 1] = run;
    out += 2;
    i += run;
  }
  return out;
}

void mtf_init() {
  int i;
  for (i = 0; i < 256; i++) { mtf_table[i] = i; }
}

int mtf_encode(int sym) {
  int i = 0;
  while (mtf_table[i] != sym) { i++; }
  int j;
  for (j = i; j > 0; j--) { mtf_table[j] = mtf_table[j - 1]; }
  mtf_table[0] = sym;
  return i;
}

int main() {
  int n = input();
  int passes = input();
  int seed = input();
  if (n > 2048) { n = 2048; }
  int p;
  int checksum = 0;
  for (p = 0; p < passes; p++) {
    generate_block(n, seed + p);
    int encoded = run_length_encode(n);
    mtf_init();
    int i;
    for (i = 0; i < 256; i++) { freq[i] = 0; }
    for (i = 0; i < encoded; i += 2) {
      int rank = mtf_encode(rle[i]);
      freq[rank & 255] += rle[i + 1];
    }
    int bits = 0;
    for (i = 0; i < 256; i++) {
      int f = freq[i];
      int length = 1;
      while (f > 1) { f = f >> 1; length++; }
      bits += freq[i] * length;
    }
    checksum = (checksum + bits + encoded) & 16777215;
  }
  print(checksum);
  return 0;
}
"""

WORKLOAD = Workload(
    name="401.bzip2",
    source=SOURCE + bank_for("401.bzip2"),
    train_input=(512, 2, 17),
    ref_input=(1024, 3, 41),
    character="byte-loop compression: runs, MTF table shuffles, counts",
)
