"""Gadget finder tests."""

from repro.security.gadgets import (
    Gadget, find_gadgets, free_branch_ends, gadget_count,
)


def test_bare_ret_is_a_gadget():
    gadgets = find_gadgets(b"\xc3")
    assert 0 in gadgets
    assert gadgets[0].mnemonics() == ("ret",)


def test_pop_ret_gadget():
    gadgets = find_gadgets(bytes.fromhex("58c3"))  # pop eax; ret
    assert gadgets[0].mnemonics() == ("pop", "ret")


def test_every_suffix_offset_found():
    # mov eax,1 ; pop ebx ; ret — gadgets at several start offsets.
    text = bytes.fromhex("b801000000" "5b" "c3")
    gadgets = find_gadgets(text)
    assert 0 in gadgets      # the full sequence
    assert 5 in gadgets      # pop ebx; ret
    assert 6 in gadgets      # ret


def test_unintended_instructions_found():
    # mov eax, 0x00c2c358: misaligned decode gives pop eax; ret at +1.
    text = bytes.fromhex("b858c3c200")
    gadgets = find_gadgets(text)
    assert 1 in gadgets
    assert gadgets[1].mnemonics() == ("pop", "ret")


def test_interior_control_flow_disqualifies():
    # jmp +0 ; ret — the jmp ends the attacker's decode.
    text = bytes.fromhex("eb00c3")
    gadgets = find_gadgets(text)
    assert 0 not in gadgets
    assert 2 in gadgets  # the ret alone


def test_int80_allowed_inside_gadget():
    text = bytes.fromhex("cd80c3")  # int 0x80; ret
    gadgets = find_gadgets(text)
    assert gadgets[0].mnemonics() == ("int", "ret")


def test_ret_imm16_terminates_gadgets():
    text = bytes.fromhex("58c20800")  # pop eax; ret 8
    gadgets = find_gadgets(text)
    assert gadgets[0].mnemonics() == ("pop", "ret")
    assert gadgets[0].terminator.operands[0].value == 8


def test_indirect_jump_terminates_gadgets():
    text = bytes.fromhex("58ffe0")  # pop eax; jmp eax
    gadgets = find_gadgets(text)
    assert gadgets[0].mnemonics() == ("pop", "jmp_reg")


def test_max_instruction_limit():
    # Seven movs then ret: with max_instrs=5 the full window is not a
    # gadget, but the 4-instruction suffix is.
    text = bytes.fromhex("89d8" * 7 + "c3")
    gadgets = find_gadgets(text, max_instrs=5)
    assert 0 not in gadgets
    assert 2 * 3 in gadgets


def test_window_limits_lookback():
    text = bytes.fromhex("90" * 30 + "c3")
    gadgets = find_gadgets(text, window=4)
    assert min(gadgets) == 30 - 4


def test_free_branch_ends_finds_all_kinds():
    text = bytes.fromhex("c3" "c20400" "ffd1" "ffe2")
    ends = free_branch_ends(text)
    end_offsets = [end for end, _length in ends]
    assert 1 in end_offsets       # ret
    assert 4 in end_offsets       # ret imm16
    assert 6 in end_offsets       # call ecx
    assert 8 in end_offsets       # jmp edx


def test_gadget_count_matches_find(fib_build):
    binary = fib_build.link_baseline()
    assert gadget_count(binary.text) == len(find_gadgets(binary.text))


def test_real_binary_has_gadgets(fib_build):
    binary = fib_build.link_baseline()
    gadgets = find_gadgets(binary.text)
    assert len(gadgets) > 10
    for gadget in gadgets.values():
        assert gadget.terminator.is_free_branch
        assert isinstance(gadget, Gadget)
        assert gadget.raw == bytes(binary.text[gadget.offset:
                                               gadget.offset + gadget.size])
