"""The differential fuzzing campaign driver.

One *candidate* is a (MinC source, input vector) pair. Evaluating it
runs the entire pipeline the project has, and demands agreement:

1. the IR reference interpreter (ground truth, with a CFG-edge observer
   attached and a step-fuel guard so non-terminating mutants surface as
   bounded skips, not hangs);
2. the baseline binary on the machine simulator (compiler correctness);
3. K diversified variants per paper config — uniform ``p=0.5`` and
   profile-guided ``(0, 0.3)`` — each checked against the baseline on
   output vector, exit code, and the structural dynamic-instruction
   bound (diversification correctness).

Any disagreement becomes a :class:`~repro.check.differential
.DivergenceReport`, is retried under a fresh derived seed to separate
systematic miscompiles from seed-specific layouts, is greedily shrunk
to a minimal reproducer, and both the original and the reproducer are
stored in the corpus for ``--replay``.

Coverage is AFL-style feature signatures: bucketed CFG edge counts from
the reference run, reference outcome classes, NOP-placement density
buckets and inserted-encoding size sets per config, verifier outcomes
(when ``REPRO_STATIC_VERIFY`` is on), and fault codes. A candidate that
lights up any new feature joins the corpus and becomes mutation fodder.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from types import SimpleNamespace

from repro.check.differential import (
    DivergenceReport, Observation, _compare_variant, observe_binary,
)
from repro.core.config import DiversificationConfig
from repro.errors import ReproError
from repro.ir.interp import ExecutionLimitExceeded, run_module
from repro.minc.parser import parse
from repro.minc.pretty import pretty_print
from repro.obs import metrics
from repro.obs.knobs import knob_value
from repro.obs.trace import span
from repro.pipeline import ProgramBuild

from repro.fuzz.corpus import Corpus, CorpusEntry, derive_seed, entry_id_for
from repro.fuzz.generate import (
    DEFAULT_LIMITS, generate_inputs, generate_program,
)
from repro.fuzz.mutate import mutate_program
from repro.fuzz.shrink import shrink_source


def paper_configs():
    """The two diversification configs the paper evaluates."""
    return (DiversificationConfig.uniform(0.50),
            DiversificationConfig.profile_guided(0.00, 0.30))


@dataclass(frozen=True)
class FuzzParams:
    """Everything that determines a campaign; equal params, equal run."""

    programs: int = 200        # candidate budget
    variants: int = 2          # diversified seeds per config
    seconds: float = 0.0       # optional wall-clock budget (0 = none)
    fuel: int = 200_000        # reference-interpreter step budget
    seed: int = 0              # campaign master seed
    limits: object = None      # GenLimits; None -> DEFAULT_LIMITS
    mutate_ratio: float = 0.5  # mutation share once the corpus is seeded
    configs: tuple = None      # None -> paper_configs()
    variant_hook: object = None  # test-only binary corruption hook
    shrink: bool = True
    max_step_factor: int = 8   # simulator fuel multiplier

    def resolved_limits(self):
        return self.limits if self.limits is not None else DEFAULT_LIMITS

    def resolved_configs(self):
        return self.configs if self.configs is not None else paper_configs()


@dataclass
class Finding:
    """One divergence, with its reproducer trail."""

    entry_id: str
    report: DivergenceReport
    shrunk_source: str | None = None
    shrunk_entry_id: str | None = None
    shrink_steps: int = 0

    def describe(self):
        text = f"[{self.entry_id}] {self.report.describe()}"
        if self.shrunk_entry_id is not None:
            text += (f"; shrunk in {self.shrink_steps} step(s) to "
                     f"[{self.shrunk_entry_id}]")
        return text


@dataclass
class CampaignStats:
    """Aggregate outcome of one campaign."""

    execs: int = 0
    generated: int = 0
    mutants: int = 0
    invalid_mutants: int = 0
    skipped: dict = field(default_factory=dict)   # reason -> count
    findings: list = field(default_factory=list)  # Finding objects
    coverage_size: int = 0
    corpus_entries: int = 0
    shrink_steps: int = 0
    duration: float = 0.0
    stopped_early: bool = False

    @property
    def genuine_findings(self):
        return [finding for finding in self.findings
                if finding.report.genuine is not False]

    @property
    def execs_per_second(self):
        return self.execs / self.duration if self.duration else 0.0

    def summary(self):
        return {
            "execs": self.execs,
            "execs_per_second": round(self.execs_per_second, 1),
            "generated": self.generated,
            "mutants": self.mutants,
            "invalid_mutants": self.invalid_mutants,
            "skipped": dict(sorted(self.skipped.items())),
            "divergences": len(self.findings),
            "genuine_divergences": len(self.genuine_findings),
            "coverage_size": self.coverage_size,
            "corpus_entries": self.corpus_entries,
            "shrink_steps": self.shrink_steps,
            "duration_s": round(self.duration, 3),
            "stopped_early": self.stopped_early,
        }


@dataclass
class CandidateResult:
    """The classified outcome of one differential execution."""

    status: str                    # "ok" | "ref_timeout" | "ref_error" | "crash"
    features: frozenset = frozenset()
    reports: list = field(default_factory=list)

    @property
    def skipped(self):
        return self.status in ("ref_timeout", "ref_error")


def _bucket(count):
    """AFL-style log2 hit-count bucket (1, 2, 3, 4-7, 8-15, ...)."""
    if count < 4:
        return count
    return 1 << (count.bit_length() - 1)


def _verify_active():
    return knob_value("REPRO_STATIC_VERIFY") is not None


def _nop_features(binary, config_name):
    """Placement-density and encoding-size coverage of one variant."""
    total = len(binary.instr_records) or 1
    inserted = [record for record in binary.instr_records
                if record.is_inserted_nop]
    density_bin = (10 * len(inserted)) // total
    sizes = "".join(str(size) for size in
                    sorted({record.size for record in inserted}))
    return {f"nop:{config_name}:d{density_bin}",
            f"nop:{config_name}:s{sizes or '-'}"}


def evaluate_candidate(source, inputs, params, *, name="candidate"):
    """Run one candidate through every engine and classify the outcome.

    Deterministic: variant seeds derive from the candidate's content
    address, so replaying an entry rebuilds bit-identical variants.
    """
    inputs = tuple(inputs)
    entry_id = entry_id_for(source, inputs)
    features = set()
    reports = []
    configs = params.resolved_configs()

    def error_report(stage, config_name, seed, exc):
        features.add(f"fault:{stage}:{getattr(exc, 'code', 'error')}")
        return DivergenceReport(
            program=name, config=config_name, seed=seed, stage=stage,
            kind="error", error=str(exc),
            error_code=getattr(exc, "code", None))

    with span("fuzz_candidate", program=name):
        try:
            build = ProgramBuild(source, name)
        except ReproError as exc:
            # The candidate passed parse+sema before getting here, so a
            # front-end/lowering crash is itself a pipeline bug.
            reports.append(error_report("compile", "-", None, exc))
            return CandidateResult("crash", frozenset(features), reports)

        edges = {}

        def observe_edge(function, source_block, target_block):
            key = (function, source_block, target_block)
            edges[key] = edges.get(key, 0) + 1

        try:
            reference = run_module(build.module, inputs,
                                   max_steps=params.fuel,
                                   edge_observer=observe_edge)
        except ExecutionLimitExceeded:
            return CandidateResult("ref_timeout",
                                   frozenset({"ref:timeout"}))
        except ReproError as exc:
            # e.g. an out-of-bounds index a mutator unmasked: the
            # reference semantics reject the program, so there is no
            # ground truth to differ from.
            code = getattr(exc, "code", "error")
            return CandidateResult("ref_error",
                                   frozenset({f"ref:{code}"}))

        reference_obs = Observation(tuple(reference.output),
                                    reference.exit_code)
        for (function, src, dst), count in edges.items():
            features.add(f"edge:{function}:{src}->{dst}:x{_bucket(count)}")
        features.add(f"exit:{reference.exit_code}")
        features.add(f"outlen:x{_bucket(len(reference_obs.output))}")

        sim_fuel = max(params.fuel * params.max_step_factor, 100_000)
        try:
            baseline = build.link_baseline()
            baseline_obs = observe_binary(build, baseline, inputs,
                                          max_steps=sim_fuel)
        except ReproError as exc:
            reports.append(error_report("baseline", "-", None, exc))
            return CandidateResult("ok", frozenset(features), reports)

        divergence = reference_obs.first_divergence(baseline_obs)
        if divergence is not None:
            observable, want, got = divergence
            reports.append(DivergenceReport(
                program=name, config="-", seed=None, stage="baseline",
                kind="exit_code" if observable == "exit_code" else "output",
                observable=observable, expected=want, actual=got))
            features.add("div:baseline")
            return CandidateResult("ok", frozenset(features), reports)

        variant_fuel = max(baseline_obs.instr_count
                           * params.max_step_factor, 100_000)

        def run_variant(config, config_name, profile, seed):
            """One variant's report (or None) — built, hooked, compared."""
            variant = build.link_variant(config, seed, profile)
            if params.variant_hook is not None:
                variant = params.variant_hook(variant) or variant
            variant_obs = observe_binary(build, variant, inputs,
                                         max_steps=variant_fuel)
            features.update(_nop_features(variant, config_name))
            if _verify_active():
                features.add(f"verify:clean:{config_name}")
            scope = SimpleNamespace(program=name, config=config_name)
            return _compare_variant(scope, baseline_obs, variant_obs,
                                    config, seed)

        for config in configs:
            config_name = config.describe()
            try:
                profile = (build.profile(inputs)
                           if config.requires_profile else None)
            except ReproError as exc:
                reports.append(error_report("profile", config_name,
                                            None, exc))
                continue
            for position in range(params.variants):
                seed = derive_seed("variant", entry_id, config_name,
                                   position)
                try:
                    report = run_variant(config, config_name, profile,
                                         seed)
                except ReproError as exc:
                    reports.append(error_report("variant", config_name,
                                                seed, exc))
                    continue
                if report is None:
                    continue
                # Fresh-seed retry: systematic or layout-specific?
                retry_seed = derive_seed("retry", entry_id, config_name,
                                         position)
                assert retry_seed != seed
                report.retry_seed = retry_seed
                try:
                    retry = run_variant(config, config_name, profile,
                                        retry_seed)
                except ReproError:
                    retry = "error"
                report.genuine = retry is not None
                reports.append(report)
                features.add(f"div:{report.kind}:{config_name}")

    return CandidateResult("ok", frozenset(features), reports)


def _shrink_finding(source, inputs, report, params):
    """Reduce a diverging source; the shrink oracle is 'same stage+kind
    divergence still observed'. Returns ``(text, steps)`` — the original
    source with zero steps when reduction goes nowhere."""
    target = (report.stage, report.kind)

    def still_diverges(text):
        result = evaluate_candidate(text, inputs, params, name="shrink")
        return any((candidate.stage, candidate.kind) == target
                   for candidate in result.reports)

    try:
        return shrink_source(source, still_diverges)
    except ReproError:
        return source, 0


def run_fuzz_campaign(params, corpus=None):
    """Run one coverage-guided campaign; returns :class:`CampaignStats`.

    ``corpus`` may be a pre-loaded :class:`Corpus` (e.g. disk-backed,
    resuming an earlier campaign); by default the campaign keeps its
    corpus in memory and the stats object is the only output.
    """
    if corpus is None:
        corpus = Corpus()
    stats = CampaignStats()
    coverage = set()
    started = time.monotonic()
    limits = params.resolved_limits()

    with span("fuzz_campaign", programs=params.programs,
              variants=params.variants):
        for index in range(params.programs):
            if params.seconds and \
                    time.monotonic() - started > params.seconds:
                stats.stopped_early = True
                break

            rng = random.Random(derive_seed("pick", params.seed, index))
            parents = [entry for entry in corpus.entries()
                       if entry.kind != "reproducer"]
            parent = None
            program = None
            if parents and rng.random() < params.mutate_ratio:
                parent = rng.choice(parents)
                donor_entry = rng.choice(parents)
                try:
                    program = mutate_program(rng, parse(parent.source),
                                             parse(donor_entry.source))
                except ReproError:
                    program = None
                if program is None:
                    stats.invalid_mutants += 1
                    parent = None
            if program is not None:
                source = pretty_print(program)
                inputs = parent.inputs
                kind = "mutant"
                stats.mutants += 1
            else:
                source = pretty_print(generate_program(
                    derive_seed("gen", params.seed, index), limits))
                inputs = generate_inputs(
                    derive_seed("inputs", params.seed, index))
                kind = "generated"
                stats.generated += 1

            result = evaluate_candidate(source, inputs, params,
                                        name=f"fuzz[{index}]")
            stats.execs += 1
            metrics.inc("fuzz.execs")
            if result.skipped:
                stats.skipped[result.status] = \
                    stats.skipped.get(result.status, 0) + 1

            new_features = result.features - coverage
            if new_features:
                coverage |= result.features
                corpus.add(CorpusEntry.create(
                    source, inputs, kind,
                    parent=parent.entry_id if parent else None,
                    features=new_features))

            for report in result.reports:
                finding = Finding(entry_id=entry_id_for(source, inputs),
                                  report=report)
                metrics.inc("fuzz.divergences")
                if params.shrink:
                    reduced, steps = _shrink_finding(source, inputs,
                                                     report, params)
                    if steps:
                        finding.shrunk_source = reduced
                        finding.shrink_steps = steps
                        stats.shrink_steps += steps
                        shrunk = CorpusEntry.create(
                            reduced, inputs, "reproducer",
                            parent=finding.entry_id)
                        corpus.add(shrunk)
                        finding.shrunk_entry_id = shrunk.entry_id
                # The unreduced diverging input must be replayable too
                # (a no-op if coverage already admitted it).
                corpus.add(CorpusEntry.create(
                    source, inputs, kind,
                    parent=parent.entry_id if parent else None))
                stats.findings.append(finding)

    stats.duration = time.monotonic() - started
    stats.coverage_size = len(coverage)
    stats.corpus_entries = len(corpus)
    metrics.inc("fuzz.coverage_size", len(coverage))
    return stats


def replay(corpus, entry_id, params=None):
    """Deterministically re-run one corpus entry by id (or id prefix).

    Returns ``(entry, CandidateResult)``. Variant seeds derive from the
    entry's content address, so this rebuilds exactly the binaries the
    campaign compared.
    """
    if params is None:
        params = FuzzParams()
    entry = corpus.get(entry_id)
    result = evaluate_candidate(entry.source, entry.inputs, params,
                                name=f"replay[{entry.entry_id}]")
    return entry, result
