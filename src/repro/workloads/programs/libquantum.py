"""462.libquantum — quantum computer simulation.

The original applies quantum gates by bit-twiddling every amplitude index
of a state vector: shifts, XORs and masks dominate, with one load/store
pair per amplitude. Issue-leaning mix with extremely hot, flat inner
loops.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 462.libquantum miniature: gate application over a state vector.
int state[1024];

void init_state(int n, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < n; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    state[i] = x & 65535;
  }
}

void toffoli_like(int n, int control1, int control2, int target) {
  int i;
  int c1 = 1 << control1;
  int c2 = 1 << control2;
  int t = 1 << target;
  // Hot loop: bit tests and xors over every basis state.
  for (i = 0; i < n; i++) {
    if ((i & c1) != 0 && (i & c2) != 0) {
      int j = i ^ t;
      if (j < i) {
        int tmp = state[i];
        state[i] = state[j];
        state[j] = tmp;
      }
    }
  }
}

void phase_like(int n, int target) {
  int i;
  int t = 1 << target;
  for (i = 0; i < n; i++) {
    if ((i & t) != 0) {
      state[i] = (state[i] * 3 + 1) & 65535;
    }
  }
}

int measure(int n) {
  int i;
  int acc = 0;
  for (i = 0; i < n; i++) {
    acc = (acc ^ (state[i] << (i & 7))) & 16777215;
  }
  return acc;
}

int main() {
  int qubits = input();
  int gates = input();
  int seed = input();
  if (qubits > 10) { qubits = 10; }
  int n = 1 << qubits;
  init_state(n, seed);
  int g;
  int x = seed;
  for (g = 0; g < gates; g++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int a = x % qubits;
    x = (x * 1103515245 + 12345) & 2147483647;
    int b = x % qubits;
    x = (x * 1103515245 + 12345) & 2147483647;
    int c = x % qubits;
    if (a != b && b != c && a != c) {
      toffoli_like(n, a, b, c);
    }
    phase_like(n, a);
  }
  print(measure(n));
  return 0;
}
"""

WORKLOAD = Workload(
    name="462.libquantum",
    source=SOURCE + bank_for("462.libquantum"),
    train_input=(8, 12, 5),
    ref_input=(10, 14, 2),
    character="bit-twiddling gate loops: shifts/xors, issue-leaning",
)
