"""The paper's contribution: profile-guided NOP-insertion diversity.

- :mod:`repro.core.probability` — the probability models: uniform pNOP,
  and the paper's linear and logarithmic profile-guided functions (§3.1).
- :mod:`repro.core.config` — :class:`DiversificationConfig`, the
  compile-time knobs (probability model, candidate set, basic-block
  shifting).
- :mod:`repro.core.policies` — turns (config, profile) into a per-block
  probability function.
- :mod:`repro.core.nop_insertion` — Algorithm 1: the insertion pass over
  the low-level representation.
- :mod:`repro.core.bbshift` — basic-block shifting (§6 future work).
- :mod:`repro.core.variants` — seeded variant and population generation.
"""

from repro.core.probability import (
    LinearProfileProbability, LogProfileProbability, UniformProbability,
)
from repro.core.config import DiversificationConfig
from repro.core.policies import block_probability_function
from repro.core.nop_insertion import insert_nops, insert_nops_in_unit
from repro.core.bbshift import shift_basic_blocks
from repro.core.substitution import (
    is_substitutable, substitute_encodings, substitute_unit,
)
from repro.core.variants import diversify_unit, variant_seeds

__all__ = [
    "LinearProfileProbability", "LogProfileProbability",
    "UniformProbability", "DiversificationConfig",
    "block_probability_function", "insert_nops", "insert_nops_in_unit",
    "shift_basic_blocks", "diversify_unit", "variant_seeds",
    "is_substitutable", "substitute_encodings", "substitute_unit",
]
