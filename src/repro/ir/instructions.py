"""The IR instruction set.

Every instruction is a small mutable object with explicit operand slots.
``defs()`` and ``uses()`` expose the registers an instruction writes/reads,
which is all the optimizer and the backend's liveness analysis need.

Terminators (:class:`Branch`, :class:`CondBranch`, :class:`Return`) appear
only as the last instruction of a block; the verifier enforces this.
"""

from __future__ import annotations

from repro.errors import IRValidationError
from repro.ir.values import VirtualReg

#: Binary operators: arithmetic, bitwise, shifts and comparisons.
#: Comparisons produce 0 or 1. ``div``/``mod`` are C-style truncating.
BINARY_OPS = frozenset({
    "add", "sub", "mul", "div", "mod",
    "and", "or", "xor", "shl", "shr",
    "lt", "le", "gt", "ge", "eq", "ne",
})

#: The subset of BINARY_OPS that are comparisons.
COMPARISON_OPS = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})

#: Unary operators. ``not`` is logical (C ``!``), ``bnot`` bitwise (``~``).
UNARY_OPS = frozenset({"neg", "not", "bnot"})


class IRInstr:
    """Base class; subclasses define ``defs``/``uses``/``__repr__``."""

    is_terminator = False

    def defs(self):
        """Virtual registers written by this instruction."""
        return ()

    def uses(self):
        """Values read by this instruction (registers and constants)."""
        return ()

    def used_regs(self):
        """Virtual registers read by this instruction."""
        return tuple(v for v in self.uses() if isinstance(v, VirtualReg))


class Copy(IRInstr):
    """``dst = src`` where src is a register or constant."""

    def __init__(self, dst, src):
        self.dst = dst
        self.src = src

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.src,)

    def __repr__(self):
        return f"{self.dst!r} = {self.src!r}"


class Unary(IRInstr):
    """``dst = op src``."""

    def __init__(self, op, dst, src):
        if op not in UNARY_OPS:
            raise IRValidationError(
                f"unknown unary op {op!r}",
                context={"op": op, "known": sorted(UNARY_OPS)})
        self.op = op
        self.dst = dst
        self.src = src

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.src,)

    def __repr__(self):
        return f"{self.dst!r} = {self.op} {self.src!r}"


class Binary(IRInstr):
    """``dst = lhs op rhs``."""

    def __init__(self, op, dst, lhs, rhs):
        if op not in BINARY_OPS:
            raise IRValidationError(
                f"unknown binary op {op!r}",
                context={"op": op, "known": sorted(BINARY_OPS)})
        self.op = op
        self.dst = dst
        self.lhs = lhs
        self.rhs = rhs

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.lhs, self.rhs)

    def __repr__(self):
        return f"{self.dst!r} = {self.op} {self.lhs!r}, {self.rhs!r}"


class ALoad(IRInstr):
    """``dst = array[index]`` — load from a global array."""

    def __init__(self, dst, array, index):
        self.dst = dst
        self.array = array  # global array name (str)
        self.index = index

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.index,)

    def __repr__(self):
        return f"{self.dst!r} = {self.array}[{self.index!r}]"


class AStore(IRInstr):
    """``array[index] = value`` — store to a global array."""

    def __init__(self, array, index, value):
        self.array = array
        self.index = index
        self.value = value

    def uses(self):
        return (self.index, self.value)

    def __repr__(self):
        return f"{self.array}[{self.index!r}] = {self.value!r}"


class Call(IRInstr):
    """``dst = callee(args...)``; ``dst`` may be None for void calls."""

    def __init__(self, dst, callee, args):
        self.dst = dst
        self.callee = callee  # function name (str)
        self.args = list(args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()

    def uses(self):
        return tuple(self.args)

    def __repr__(self):
        args = ", ".join(repr(a) for a in self.args)
        prefix = f"{self.dst!r} = " if self.dst is not None else ""
        return f"{prefix}call {self.callee}({args})"


class Print(IRInstr):
    """Write one integer (and a newline) to program output."""

    def __init__(self, value):
        self.value = value

    def uses(self):
        return (self.value,)

    def __repr__(self):
        return f"print {self.value!r}"


class Input(IRInstr):
    """``dst = input()`` — read the next integer from program input.

    Reading past the end of the input vector yields 0, so programs are
    total for any input.
    """

    def __init__(self, dst):
        self.dst = dst

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst!r} = input()"


class Branch(IRInstr):
    """Unconditional jump to ``target`` (a block label string)."""

    is_terminator = True

    def __init__(self, target):
        self.target = target

    def successors(self):
        return (self.target,)

    def __repr__(self):
        return f"br {self.target}"


class CondBranch(IRInstr):
    """Jump to ``then_target`` if ``cond`` is nonzero, else ``else_target``."""

    is_terminator = True

    def __init__(self, cond, then_target, else_target):
        self.cond = cond
        self.then_target = then_target
        self.else_target = else_target

    def uses(self):
        return (self.cond,)

    def successors(self):
        return (self.then_target, self.else_target)

    def __repr__(self):
        return f"cbr {self.cond!r}, {self.then_target}, {self.else_target}"


class Return(IRInstr):
    """Return from the function; ``value`` may be None for void."""

    is_terminator = True

    def __init__(self, value=None):
        self.value = value

    def uses(self):
        return (self.value,) if self.value is not None else ()

    def successors(self):
        return ()

    def __repr__(self):
        return f"ret {self.value!r}" if self.value is not None else "ret"


def evaluate_binary(op, lhs, rhs):
    """Evaluate a binary op on signed 32-bit ints, with x86 semantics.

    Division and modulo truncate toward zero (IDIV). Division by zero is
    defined here to yield 0 (the simulator's IDIV raises a machine fault;
    front-end code guards divisions, and the interpreter mirrors the guard
    behaviour of the generated runtime helper, which returns 0).
    """
    from repro.ir.values import wrap32

    if op == "add":
        return wrap32(lhs + rhs)
    if op == "sub":
        return wrap32(lhs - rhs)
    if op == "mul":
        return wrap32(lhs * rhs)
    if op == "div":
        if rhs == 0:
            return 0
        quotient = abs(lhs) // abs(rhs)
        return wrap32(-quotient if (lhs < 0) != (rhs < 0) else quotient)
    if op == "mod":
        if rhs == 0:
            return 0
        quotient = abs(lhs) // abs(rhs)
        quotient = -quotient if (lhs < 0) != (rhs < 0) else quotient
        return wrap32(lhs - quotient * rhs)
    if op == "and":
        return wrap32(lhs & rhs)
    if op == "or":
        return wrap32(lhs | rhs)
    if op == "xor":
        return wrap32(lhs ^ rhs)
    if op == "shl":
        return wrap32(lhs << (rhs & 31))
    if op == "shr":
        return wrap32(lhs >> (rhs & 31))  # arithmetic shift (SAR)
    if op == "lt":
        return int(lhs < rhs)
    if op == "le":
        return int(lhs <= rhs)
    if op == "gt":
        return int(lhs > rhs)
    if op == "ge":
        return int(lhs >= rhs)
    if op == "eq":
        return int(lhs == rhs)
    if op == "ne":
        return int(lhs != rhs)
    raise IRValidationError(f"unknown binary op {op!r}",
                            context={"op": op, "known": sorted(BINARY_OPS)})


def evaluate_unary(op, value):
    """Evaluate a unary op on a signed 32-bit int."""
    from repro.ir.values import wrap32

    if op == "neg":
        return wrap32(-value)
    if op == "not":
        return int(value == 0)
    if op == "bnot":
        return wrap32(~value)
    raise IRValidationError(f"unknown unary op {op!r}",
                            context={"op": op, "known": sorted(UNARY_OPS)})
