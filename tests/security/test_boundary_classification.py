"""Gadget classification against recovered instruction boundaries
(the paper's Table 4 framing: intended vs unintended gadgets)."""

from functools import lru_cache

import pytest

from repro.analysis import recover_cfg
from repro.core.config import DiversificationConfig
from repro.pipeline import ProgramBuild
from repro.security.gadgets import find_gadgets
from repro.security.ropgadget import (
    RopGadgetScanner, boundary_scan, classify_gadget_boundaries,
)
from repro.workloads.registry import get_workload


@lru_cache(maxsize=None)
def _state(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    return workload, build, build.link_baseline()


@pytest.mark.parametrize("name", ("429.mcf", "470.lbm"))
def test_partition_is_total_and_disjoint(name):
    _workload, _build, baseline = _state(name)
    gadgets = find_gadgets(baseline.text)
    partition = boundary_scan(baseline, gadgets)
    intended, unintended = partition["intended"], partition["unintended"]
    # classification never adds or removes gadgets
    assert partition["total"] == len(gadgets)
    assert len(intended) + len(unintended) == len(gadgets)
    assert not set(intended) & set(unintended)
    assert set(intended) | set(unintended) == set(gadgets)


def test_intended_gadgets_start_on_linker_boundaries():
    _workload, _build, baseline = _state("429.mcf")
    partition = boundary_scan(baseline)
    record_addresses = {record.address
                        for record in baseline.instr_records}
    for offset in partition["intended"]:
        assert baseline.text_base + offset in record_addresses
    for offset in partition["unintended"]:
        assert baseline.text_base + offset not in record_addresses


def test_unintended_gadgets_exist_and_dominate():
    # IA-32 unaligned decoding is exactly why the paper's NOP insertion
    # works: most gadgets are unintended byte artifacts.
    _workload, _build, baseline = _state("429.mcf")
    counts = RopGadgetScanner().boundary_counts(baseline)
    assert counts["intended"] + counts["unintended"] == counts["total"]
    assert counts["unintended"] > 0
    assert counts["intended"] > 0


def test_classification_on_variant_stays_total():
    workload, build, baseline = _state("429.mcf")
    config = DiversificationConfig.uniform(0.50)
    variant = build.link_variant(config, seed=0)
    gadgets = find_gadgets(variant.text)
    counts = RopGadgetScanner().boundary_counts(variant, gadgets)
    assert counts["total"] == len(gadgets)
    assert counts["intended"] + counts["unintended"] == counts["total"]


def test_classify_respects_text_base():
    _workload, _build, baseline = _state("470.lbm")
    gadgets = find_gadgets(baseline.text)
    cfg = recover_cfg(baseline)
    with_base, without_base = classify_gadget_boundaries(
        gadgets, cfg.boundaries, baseline.text_base), \
        classify_gadget_boundaries(gadgets, cfg.boundaries, 0)
    # text_base=0 misaligns every lookup: nothing should be intended
    assert with_base[0]  # some intended gadgets under the right base
    assert not without_base[0]


def test_per_bucket_toolkits_classify_only_their_gadgets():
    _workload, _build, baseline = _state("429.mcf")
    partition = boundary_scan(baseline)
    scanner = RopGadgetScanner()
    assert (partition["intended_toolkit"].counts()
            == scanner.scan(partition["intended"]).counts())
    assert (partition["unintended_toolkit"].counts()
            == scanner.scan(partition["unintended"]).counts())
