"""Semantic analysis for MinC.

Checks performed before IR generation:

- globals/functions have unique names; ``main`` exists and takes no
  parameters;
- every name resolves (locals and parameters shadow globals);
- scalars are not indexed and arrays are not used as scalars;
- calls target declared functions with matching arity; results of ``void``
  calls are not used as values;
- ``break``/``continue`` appear only inside loops;
- local declarations do not redeclare a name in the same function.

The analysis returns a :class:`ProgramInfo` the IR generator consumes, so
name-category questions are answered exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MincSemanticError
from repro.minc import ast_nodes as ast


@dataclass
class FunctionInfo:
    name: str
    params: list
    returns_value: bool
    locals: set = field(default_factory=set)


@dataclass
class ProgramInfo:
    """Symbol information for a checked program."""
    scalars: dict = field(default_factory=dict)   # name -> GlobalDecl
    arrays: dict = field(default_factory=dict)    # name -> GlobalDecl
    functions: dict = field(default_factory=dict)  # name -> FunctionInfo


def analyze(program):
    """Check ``program``; returns :class:`ProgramInfo` or raises."""
    info = ProgramInfo()

    for decl in program.globals:
        if decl.name in info.scalars or decl.name in info.arrays:
            raise MincSemanticError(
                f"duplicate global {decl.name!r} (line {decl.line})")
        if decl.is_array:
            info.arrays[decl.name] = decl
        else:
            info.scalars[decl.name] = decl

    for func in program.functions:
        if func.name in info.functions:
            raise MincSemanticError(
                f"duplicate function {func.name!r} (line {func.line})")
        if func.name in info.scalars or func.name in info.arrays:
            raise MincSemanticError(
                f"function {func.name!r} collides with a global "
                f"(line {func.line})")
        if len(set(func.params)) != len(func.params):
            raise MincSemanticError(
                f"duplicate parameter in {func.name!r} (line {func.line})")
        info.functions[func.name] = FunctionInfo(
            func.name, list(func.params), func.returns_value)

    if "main" not in info.functions:
        raise MincSemanticError("program has no main function")
    if info.functions["main"].params:
        raise MincSemanticError("main must take no parameters")

    for func in program.functions:
        _check_function(func, info)
    return info


class _FunctionChecker:
    def __init__(self, func, info):
        self.func = func
        self.info = info
        self.finfo = info.functions[func.name]
        self.declared = set(func.params)
        self.loop_depth = 0

    def error(self, message, node):
        raise MincSemanticError(
            f"{message} (in {self.func.name!r}, line {node.line})")

    # -- statements ------------------------------------------------------------

    def check_body(self, statements):
        for statement in statements:
            self.check_statement(statement)

    def check_statement(self, node):
        if isinstance(node, ast.VarDecl):
            if node.name in self.declared:
                self.error(f"redeclaration of {node.name!r}", node)
            if node.init is not None:
                self.check_expr(node.init)
            self.declared.add(node.name)
            self.finfo.locals.add(node.name)
        elif isinstance(node, ast.Assign):
            self.check_target(node.target)
            self.check_expr(node.value)
        elif isinstance(node, ast.IncDec):
            self.check_target(node.target)
        elif isinstance(node, ast.If):
            self.check_expr(node.cond)
            self.check_body(node.then_body)
            self.check_body(node.else_body)
        elif isinstance(node, ast.While):
            self.check_expr(node.cond)
            self.loop_depth += 1
            self.check_body(node.body)
            self.loop_depth -= 1
        elif isinstance(node, ast.For):
            if node.init is not None:
                self.check_statement(node.init)
            if node.cond is not None:
                self.check_expr(node.cond)
            self.loop_depth += 1
            self.check_body(node.body)
            if node.step is not None:
                self.check_statement(node.step)
            self.loop_depth -= 1
        elif isinstance(node, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(node, ast.Break) else "continue"
                self.error(f"{kind} outside a loop", node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                if not self.finfo.returns_value:
                    self.error("void function returns a value", node)
                self.check_expr(node.value)
            elif self.finfo.returns_value:
                self.error("non-void function returns nothing", node)
        elif isinstance(node, ast.PrintStmt):
            self.check_expr(node.value)
        elif isinstance(node, ast.ExprStmt):
            self.check_expr(node.expr, allow_void=True)
        else:
            self.error(f"unknown statement {type(node).__name__}", node)

    def check_target(self, target):
        if isinstance(target, ast.Name):
            name = target.ident
            if name in self.declared:
                return
            if name in self.info.scalars:
                return
            if name in self.info.arrays:
                self.error(f"array {name!r} used as a scalar", target)
            self.error(f"undefined variable {name!r}", target)
        elif isinstance(target, ast.IndexExpr):
            if target.array not in self.info.arrays:
                self.error(f"undefined array {target.array!r}", target)
            self.check_expr(target.index)
        else:
            self.error("invalid assignment target", target)

    # -- expressions ------------------------------------------------------------

    def check_expr(self, node, allow_void=False):
        if isinstance(node, ast.IntLit):
            return
        if isinstance(node, ast.Name):
            self.check_target(node)
            return
        if isinstance(node, ast.IndexExpr):
            if node.array not in self.info.arrays:
                self.error(f"undefined array {node.array!r}", node)
            self.check_expr(node.index)
            return
        if isinstance(node, ast.InputExpr):
            return
        if isinstance(node, ast.CallExpr):
            finfo = self.info.functions.get(node.callee)
            if finfo is None:
                self.error(f"call to undefined function {node.callee!r}",
                           node)
            if len(node.args) != len(finfo.params):
                self.error(
                    f"{node.callee!r} takes {len(finfo.params)} args, "
                    f"got {len(node.args)}", node)
            if not finfo.returns_value and not allow_void:
                self.error(f"void function {node.callee!r} used as a value",
                           node)
            for arg in node.args:
                self.check_expr(arg)
            return
        if isinstance(node, ast.UnaryExpr):
            self.check_expr(node.operand)
            return
        if isinstance(node, ast.BinaryExpr):
            self.check_expr(node.lhs)
            self.check_expr(node.rhs)
            return
        self.error(f"unknown expression {type(node).__name__}", node)


def _check_function(func, info):
    _FunctionChecker(func, info).check_body(func.body)
