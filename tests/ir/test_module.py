"""IR container and verifier tests."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Block, Branch, CondBranch, Copy, Function, FunctionBuilder, GlobalArray,
    Module, Return, verify_module,
)
from repro.ir.values import Const, wrap32


class TestValues:
    def test_wrap32_positive_overflow(self):
        assert wrap32(2**31) == -(2**31)

    def test_wrap32_negative_overflow(self):
        assert wrap32(-(2**31) - 1) == 2**31 - 1

    def test_wrap32_identity_in_range(self):
        assert wrap32(12345) == 12345
        assert wrap32(-12345) == -12345

    def test_const_wraps_on_construction(self):
        assert Const(2**32 + 5).value == 5


class TestGlobalArray:
    def test_initial_values_zero_fill(self):
        array = GlobalArray("a", 4, [1, 2])
        assert array.initial_values() == [1, 2, 0, 0]

    def test_size_must_be_positive(self):
        with pytest.raises(IRError):
            GlobalArray("a", 0)

    def test_initializer_too_long(self):
        with pytest.raises(IRError):
            GlobalArray("a", 2, [1, 2, 3])


class TestFunctionStructure:
    def test_fresh_vregs_are_unique(self):
        function = Function("f")
        assert function.new_vreg() != function.new_vreg()

    def test_duplicate_block_label_rejected(self):
        function = Function("f")
        function.add_block(Block("x"))
        with pytest.raises(IRError):
            function.add_block(Block("x"))

    def test_edges_and_predecessors(self):
        function = Function("f")
        builder = FunctionBuilder(function)
        entry = builder.start_block("entry")
        loop = builder.new_block("loop")
        exit_block = builder.new_block("exit")
        builder.branch(loop)
        builder.position_at(loop)
        cond = builder.const(1)
        builder.cond_branch(cond, loop, exit_block)
        builder.position_at(exit_block)
        builder.ret(Const(0))

        assert set(function.edges()) == {
            (entry.label, loop.label),
            (loop.label, loop.label),
            (loop.label, exit_block.label),
        }
        preds = function.predecessors()
        assert sorted(preds[loop.label]) == sorted([entry.label,
                                                    loop.label])


class TestVerifier:
    def build_module(self):
        module = Module("m")
        function = module.add_function(Function("main"))
        builder = FunctionBuilder(function)
        builder.start_block("entry")
        builder.ret(Const(0))
        return module

    def test_valid_module(self):
        verify_module(self.build_module())

    def test_missing_main(self):
        module = Module("m")
        function = module.add_function(Function("f"))
        FunctionBuilder(function).start_block("e")
        function.entry.instrs.append(Return(Const(0)))
        with pytest.raises(IRError):
            verify_module(module)

    def test_unterminated_block(self):
        module = self.build_module()
        module.function("main").entry.instrs.pop()
        with pytest.raises(IRError):
            verify_module(module)

    def test_terminator_in_middle(self):
        module = self.build_module()
        entry = module.function("main").entry
        entry.instrs.insert(0, Return(Const(1)))
        with pytest.raises(IRError):
            verify_module(module)

    def test_branch_to_unknown_block(self):
        module = self.build_module()
        entry = module.function("main").entry
        entry.instrs[-1] = Branch("nowhere")
        with pytest.raises(IRError):
            verify_module(module)

    def test_call_to_unknown_function(self):
        from repro.ir import Call
        module = self.build_module()
        entry = module.function("main").entry
        entry.instrs.insert(0, Call(None, "ghost", []))
        with pytest.raises(IRError):
            verify_module(module)

    def test_call_arity_checked(self):
        from repro.ir import Call
        module = self.build_module()
        helper = module.add_function(Function("helper", param_count=2))
        builder = FunctionBuilder(helper)
        builder.start_block("e")
        builder.ret(Const(0))
        entry = module.function("main").entry
        entry.instrs.insert(0, Call(None, "helper", [Const(1)]))
        with pytest.raises(IRError):
            verify_module(module)

    def test_unknown_global_reference(self):
        from repro.ir import ALoad
        module = self.build_module()
        function = module.function("main")
        dst = function.new_vreg()
        function.entry.instrs.insert(0, ALoad(dst, "ghost", Const(0)))
        with pytest.raises(IRError):
            verify_module(module)

    def test_builder_refuses_emitting_into_terminated_block(self):
        module = self.build_module()
        builder = FunctionBuilder(module.function("main"))
        builder.position_at(module.function("main").entry)
        with pytest.raises(IRError):
            builder.const(1)
