"""Lockstep batch engine: derived results must be bit-identical to
per-variant simulation.

The core property under test: for any variant with a proven
NOP-transparency record, ``PopulationSimulator.result_for`` returns the
same instruction count, output, exit code and nonzero-only per-address
profile as ``run_binary`` on that variant — on the fib fixture, on
every registered workload under both paper configs, and on adversarial
fuzz-generated programs. The remaining tests pin the engine's edges:
knob validation, ``off``/``check`` modes, proof-failure and
baseline-failure fallbacks, and step-budget parity.
"""

import pytest

from repro.core.config import DiversificationConfig
from repro.errors import (
    BatchParityError, ConfigError, SimulationLimitExceeded,
)
from repro.fuzz.generate import generate_inputs, generate_program, \
    tiny_limits
from repro.minc.pretty import pretty_print
from repro.obs import metrics
from repro.pipeline import ProgramBuild, build_population
from repro.sim.analytic import estimate_cycles
from repro.sim.batch import (
    PopulationSimulator, population_cycles, simulate_population,
)
from repro.sim.machine import run_binary
from repro.workloads.registry import get_workload, workload_names

UNIFORM = DiversificationConfig.uniform(0.50)
GUIDED = DiversificationConfig.profile_guided(0.00, 0.30)
SEEDS = (0, 1, 2)


def _assert_same(expected, derived):
    assert derived.instr_count == expected.instr_count
    assert list(derived.output) == list(expected.output)
    assert derived.exit_code == expected.exit_code
    assert derived.addr_counts == expected.addr_counts


def _population(build, config, inputs=None):
    profile = (build.profile(inputs or ()) if config.requires_profile
               else None)
    return build_population(build, config, SEEDS, profile)


class TestFixtureParity:
    @pytest.mark.parametrize("config", [UNIFORM, GUIDED],
                             ids=["50%", "0-30%"])
    def test_derived_matches_per_variant_run(self, fib_build, config):
        baseline = fib_build.link_baseline()
        variants = _population(fib_build, config, inputs=(9,))
        results = simulate_population(baseline, variants, (9,),
                                      count_addresses=True, mode="on")
        for variant, derived in zip(variants, results):
            _assert_same(run_binary(variant, (9,), count_addresses=True),
                         derived)

    def test_uncounted_results_have_empty_addr_counts(self, fib_build):
        baseline = fib_build.link_baseline()
        variants = _population(fib_build, UNIFORM)
        for derived in simulate_population(baseline, variants, (6,),
                                           mode="on"):
            assert derived.addr_counts == {}

    def test_baseline_itself_derives(self, fib_build):
        baseline = fib_build.link_baseline()
        sim = PopulationSimulator(baseline, (7,), count_addresses=True,
                                  mode="on")
        _assert_same(run_binary(baseline, (7,), count_addresses=True),
                     sim.result_for(baseline))

    def test_results_do_not_alias_the_baseline_output(self, fib_build):
        baseline = fib_build.link_baseline()
        variants = _population(fib_build, UNIFORM)
        sim = PopulationSimulator(baseline, (6,), mode="on")
        first = sim.result_for(variants[0])
        first.output.append(999)
        assert 999 not in sim.result_for(variants[1]).output


class TestWorkloadParity:
    """The satellite property test: all 20 workloads x both paper
    configs x 3 seeds, exact parity in check mode (instr counts,
    outputs, exit codes, per-address profiles) plus exact analytic
    cycle agreement through the shared cost core."""

    @pytest.mark.parametrize("name", workload_names())
    def test_parity_on_train_input(self, name):
        workload = get_workload(name)
        build = ProgramBuild(workload.source, workload.name)
        baseline = build.link_baseline()
        counts = build.execution_counts(workload.train_input)
        for config in (UNIFORM, GUIDED):
            profile = (build.profile(workload.train_input)
                       if config.requires_profile else None)
            variants = build_population(build, config, SEEDS, profile)
            # check mode runs every variant for real and raises
            # BatchParityError on the first diverging observable.
            sim = PopulationSimulator(baseline, workload.train_input,
                                      count_addresses=True, mode="check")
            for variant in variants:
                sim.result_for(variant)
            assert not sim.warnings, sim.warnings
            base_cycles, variant_cycles = population_cycles(
                baseline, variants, counts)
            assert base_cycles == estimate_cycles(baseline, counts)
            assert variant_cycles == [estimate_cycles(variant, counts)
                                      for variant in variants]

    @pytest.mark.parametrize("name", workload_names())
    def test_sec6_parity_on_train_input(self, name):
        # §6 composed population (substitution + bb-shift + reordering
        # on top of profile-guided NOPs): the equivalence proof's count
        # plan must derive every variant with zero fallbacks, and check
        # mode cross-checks each derivation against a real run.
        workload = get_workload(name)
        build = ProgramBuild(workload.source, workload.name)
        baseline = build.link_baseline()
        config = DiversificationConfig.profile_guided(
            0.00, 0.30, encoding_substitution=True,
            basic_block_shifting=True, function_reordering=True)
        profile = build.profile(workload.train_input)
        variants = build_population(build, config, SEEDS, profile)
        before = metrics.counters().get("batch.fallbacks", 0)
        sim = PopulationSimulator(baseline, workload.train_input,
                                  count_addresses=True, mode="check")
        for variant in variants:
            sim.result_for(variant)
        after = metrics.counters().get("batch.fallbacks", 0)
        assert after - before == 0
        assert not sim.warnings, sim.warnings


class TestFuzzProgramParity:
    """Adversarial inputs: generator-produced programs (the fuzz
    corpus's population) must derive exactly, too."""

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_program_parity(self, seed):
        source = pretty_print(generate_program(seed, tiny_limits()))
        inputs = generate_inputs(seed)
        build = ProgramBuild(source, f"fuzz-{seed}")
        baseline = build.link_baseline()
        variants = _population(build, UNIFORM)
        sim = PopulationSimulator(baseline, inputs, count_addresses=True,
                                  mode="check")
        for variant in variants:
            _assert_same(run_binary(variant, inputs, count_addresses=True),
                         sim.result_for(variant))
        assert not sim.warnings


class TestModes:
    def test_unknown_mode_raises_config_error(self, fib_build):
        baseline = fib_build.link_baseline()
        with pytest.raises(ConfigError) as info:
            PopulationSimulator(baseline, mode="bogus")
        assert info.value.context["knob"] == "REPRO_SIM_BATCH"
        assert info.value.context["value"] == "bogus"

    def test_mode_resolves_from_environment(self, fib_build, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "check")
        sim = PopulationSimulator(fib_build.link_baseline())
        assert sim.mode == "check"

    def test_off_mode_simulates_each_variant(self, fib_build):
        baseline = fib_build.link_baseline()
        variants = _population(fib_build, UNIFORM)
        before = metrics.counters().get("batch.variants_simulated", 0)
        sim = PopulationSimulator(baseline, (6,), mode="off")
        for variant in variants:
            expected = run_binary(variant, (6,))
            got = sim.result_for(variant)
            assert got.instr_count == expected.instr_count
            assert list(got.output) == list(expected.output)
        after = metrics.counters().get("batch.variants_simulated", 0)
        assert after - before == len(variants)
        # off mode never runs the baseline or proves anything.
        assert sim._baseline_outcome is None

    def test_check_mode_raises_on_engine_bug(self, fib_build, monkeypatch):
        baseline = fib_build.link_baseline()
        variant = _population(fib_build, UNIFORM)[0]
        sim = PopulationSimulator(baseline, (6,), mode="check")
        real_derive = PopulationSimulator._derive

        def broken_derive(self, base, variant):
            result = real_derive(self, base, variant)
            result.instr_count += 1
            return result

        monkeypatch.setattr(PopulationSimulator, "_derive", broken_derive)
        with pytest.raises(BatchParityError) as info:
            sim.result_for(variant)
        assert info.value.context["observable"] == "instr_count"
        assert info.value.code == "sim.batch_parity"


class TestFallbacks:
    def test_sec6_population_derives_without_fallback(self, fib_build):
        # The §6 composed extensions rewrite encodings, shift blocks and
        # reorder functions — no transparency proof exists, but every
        # variant still derives analytically: plan-built binaries hand
        # over their link-time count plan (provenance), and check mode
        # cross-checks every derivation against a real run. Nothing may
        # fall back.
        config = DiversificationConfig.uniform(
            0.5, basic_block_shifting=True, encoding_substitution=True,
            function_reordering=True)
        baseline = fib_build.link_baseline()
        variants = _population(fib_build, config)
        assert any(v.provenance is not None for v in variants)
        before = metrics.counters()
        sim = PopulationSimulator(baseline, (8,), count_addresses=True,
                                  mode="check")
        for variant in variants:
            _assert_same(run_binary(variant, (8,), count_addresses=True),
                         sim.result_for(variant))
        after = metrics.counters()
        assert (after.get("batch.fallbacks", 0)
                - before.get("batch.fallbacks", 0)) == 0
        assert (after.get("batch.variants_derived", 0)
                - before.get("batch.variants_derived", 0)
                ) == len(variants)
        assert (after.get("batch.variants_derived_plan", 0)
                - before.get("batch.variants_derived_plan", 0)
                ) == sum(1 for v in variants if v.provenance is not None)
        assert not sim.warnings, sim.warnings

    def test_sec6_without_provenance_derives_via_equivalence(self,
                                                             fib_build):
        # A §6 variant that arrives without provenance (an artifact-cache
        # restore, an externally linked binary) takes the equivalence
        # proof's count plan instead — same derivation, proof paid once.
        config = DiversificationConfig.uniform(
            0.5, basic_block_shifting=True, encoding_substitution=True,
            function_reordering=True)
        baseline = fib_build.link_baseline()
        variants = [v for v in _population(fib_build, config)
                    if v.provenance is not None]
        assert variants
        for variant in variants:
            variant.provenance = None  # simulate a cache round trip
        before = metrics.counters()
        sim = PopulationSimulator(baseline, (8,), count_addresses=True,
                                  mode="check")
        for variant in variants:
            _assert_same(run_binary(variant, (8,), count_addresses=True),
                         sim.result_for(variant))
        after = metrics.counters()
        assert (after.get("batch.variants_derived_equivalence", 0)
                - before.get("batch.variants_derived_equivalence", 0)
                ) == len(variants)
        assert (after.get("batch.fallbacks", 0)
                - before.get("batch.fallbacks", 0)) == 0
        assert not sim.warnings, sim.warnings

    def test_unprovable_binary_falls_back_with_warning(self, fib_build,
                                                       hotcold_build):
        # A binary that is no variant of this baseline at all: both the
        # transparency and the equivalence proof must refuse it, and the
        # engine simulates it individually with the reason recorded once.
        baseline = fib_build.link_baseline()
        stranger = _population(hotcold_build, UNIFORM)[0]
        before = metrics.counters().get("batch.fallbacks", 0)
        sim = PopulationSimulator(baseline, (8,), count_addresses=True,
                                  mode="on")
        _assert_same(run_binary(stranger, (8,), count_addresses=True),
                     sim.result_for(stranger))
        after = metrics.counters().get("batch.fallbacks", 0)
        assert after - before == 1
        assert len(sim.warnings) == 1  # deduplicated
        assert "equivalence proofs failed" in sim.warnings[0]

    def test_failing_baseline_falls_back(self, fib_build):
        # A baseline that exhausts its budget cannot anchor derivation;
        # each variant is simulated (and fails identically).
        baseline = fib_build.link_baseline()
        variant = _population(fib_build, UNIFORM)[0]
        sim = PopulationSimulator(baseline, (9,), max_steps=50, mode="on")
        with pytest.raises(SimulationLimitExceeded):
            sim.result_for(variant)
        assert any("baseline run failed" in w for w in sim.warnings)

    def test_derived_count_past_budget_raises_limit_error(self, fib_build):
        baseline = fib_build.link_baseline()
        variant = _population(fib_build, UNIFORM)[0]
        baseline_count = run_binary(baseline, (9,)).instr_count
        sim = PopulationSimulator(baseline, (9,), mode="on")
        # Fuel covers the baseline but not the variant's extra NOPs: the
        # real run's limit error must surface, not a silently-derived
        # over-budget result.
        with pytest.raises(SimulationLimitExceeded):
            sim.result_for(variant, max_steps=baseline_count)
        # With ample fuel the same simulator derives normally.
        derived = sim.result_for(variant)
        assert derived.instr_count > baseline_count


class TestMetrics:
    def test_derivation_counters(self, fib_build):
        baseline = fib_build.link_baseline()
        variants = _population(fib_build, UNIFORM)
        before = metrics.counters()
        simulate_population(baseline, variants, (6,), mode="on")
        after = metrics.counters()

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("batch.populations") == 1
        assert delta("batch.baseline_runs") == 1
        assert delta("batch.variants_derived") == len(variants)
        assert delta("batch.proofs") == len(variants)
        assert delta("batch.fallbacks") == 0


class TestPopulationCycles:
    def test_matches_per_binary_estimates(self, fib_build):
        baseline = fib_build.link_baseline()
        variants = _population(fib_build, UNIFORM)
        counts = fib_build.execution_counts((9,))
        base_cycles, variant_cycles = population_cycles(
            baseline, variants, counts)
        assert base_cycles == estimate_cycles(baseline, counts)
        assert variant_cycles == [estimate_cycles(variant, counts)
                                  for variant in variants]
