"""The REPRO_STATIC_VERIFY post-link gate, the pooled population API,
and the ``repro-diversify verify`` CLI subcommand."""

import json

import pytest

from repro.analysis import verify_population
from repro.cli import main
from repro.core.config import DiversificationConfig
from repro.pipeline import (
    VERIFY_SAMPLE_STRIDE, ProgramBuild, _static_verify_mode,
    build_population,
)
from repro.workloads.registry import get_workload

CONFIG = DiversificationConfig.uniform(0.50)


def _build(name="470.lbm"):
    workload = get_workload(name)
    return workload, ProgramBuild(workload.source, workload.name)


def test_static_verify_mode_parsing(monkeypatch):
    for value, expected in (("", None), ("0", None), ("off", None),
                            ("no", None), ("false", None),
                            ("all", "all"), ("FULL", "all"),
                            ("1", "sample"), ("sample", "sample")):
        monkeypatch.setenv("REPRO_STATIC_VERIFY", value)
        assert _static_verify_mode() == expected, value
    monkeypatch.delenv("REPRO_STATIC_VERIFY")
    assert _static_verify_mode() is None


def test_gate_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_STATIC_VERIFY", raising=False)
    _workload, build = _build()
    build.link_baseline()
    assert not build._verified_hashes


def test_gate_all_verifies_every_link(monkeypatch):
    monkeypatch.setenv("REPRO_STATIC_VERIFY", "all")
    _workload, build = _build()
    baseline = build.link_baseline()
    assert len(build._verified_hashes) == 1
    # dedup: relinking the identical image does not re-verify
    again = build.link_baseline()
    assert again.identity_hash() == baseline.identity_hash()
    assert len(build._verified_hashes) == 1
    for seed in range(3):
        build.link_variant(CONFIG, seed)
    assert len(build._verified_hashes) == 4


def test_gate_sample_strides_variants(monkeypatch):
    monkeypatch.setenv("REPRO_STATIC_VERIFY", "sample")
    _workload, build = _build()
    build.link_baseline()  # baselines always verified
    assert len(build._verified_hashes) == 1
    for seed in range(VERIFY_SAMPLE_STRIDE + 1):
        build.link_variant(CONFIG, seed)
    # variant links 0 and VERIFY_SAMPLE_STRIDE hit the gate
    assert len(build._verified_hashes) == 3


def test_build_population_gate_covers_cached_results(monkeypatch):
    monkeypatch.setenv("REPRO_STATIC_VERIFY", "all")
    _workload, build = _build()
    seeds = range(4)
    results = build_population(build, CONFIG, seeds)
    assert len(results) == len(seeds)
    hashes = {binary.identity_hash() for binary in results}
    assert hashes <= build._verified_hashes


def test_verify_population_pool_matches_serial():
    _workload, build = _build()
    baseline = build.link_baseline()
    binaries = [baseline] + [build.link_variant(CONFIG, seed)
                             for seed in range(3)]
    names = ["baseline", "v0", "v1", "v2"]
    serial = verify_population(binaries, names=names)
    pooled = verify_population(binaries, names=names, workers=2,
                               force_pool=True)
    assert [r.name for r in serial] == names
    assert [r.name for r in pooled] == names
    assert [r.ok for r in serial] == [r.ok for r in pooled]
    assert [r.stats for r in serial] == [r.stats for r in pooled]


def test_cli_verify_passes(capsys):
    rc = main(["verify", "470.lbm", "--variants", "1", "--p", "0.25"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "verify: PASS" in out
    assert "470.lbm" in out


def test_cli_verify_sec6_single_proof_per_variant(capsys):
    """Each §6 variant is equivalence-proven exactly once.

    Regression: the per-seed loop used to re-run ``eq_prover.prove()``
    on variants ``verify_population(..., baseline=...)`` had already
    proven, doubling proof cost and duplicating findings/NOP counts.
    """
    from repro.obs import metrics
    before = metrics.counters().get("equivalence.proofs", 0)
    rc = main(["verify", "470.lbm", "--variants", "2", "--p", "0.25",
               "--sec6", "--workers", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "verify: PASS" in out
    after = metrics.counters().get("equivalence.proofs", 0)
    # 4 §6 configs x 2 variant seeds, one proof each — not two.
    assert after - before == 8


def test_cli_verify_json_payload(tmp_path, capsys):
    out_path = tmp_path / "verify.json"
    rc = main(["verify", "470.lbm", "--variants", "1", "--p", "0.25",
               "--json", str(out_path)])
    capsys.readouterr()
    assert rc == 0
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is True
    workloads = payload["workloads"]
    assert "470.lbm" in workloads
    entry = workloads["470.lbm"]
    assert entry["findings"] == []
    assert entry["inserted_nops"] > 0
