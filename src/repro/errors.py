"""Shared exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MincSyntaxError(ReproError):
    """Raised by the MinC lexer/parser on malformed source."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class MincSemanticError(ReproError):
    """Raised by semantic analysis (undefined names, arity errors, ...)."""


class IRError(ReproError):
    """Raised when an IR module violates a structural invariant."""


class LoweringError(ReproError):
    """Raised when the backend cannot lower an IR construct."""


class EncodingError(ReproError):
    """Raised when an x86 instruction cannot be encoded."""


class DecodingError(ReproError):
    """Raised when bytes cannot be decoded as an x86 instruction."""


class LinkError(ReproError):
    """Raised by the linker (duplicate/undefined symbols, layout issues)."""


class SimulatorError(ReproError):
    """Raised by the x86 simulator on machine faults."""


class ProfileError(ReproError):
    """Raised on malformed or mismatched profile data."""


class WorkloadError(ReproError):
    """Raised when a named workload does not exist or fails to build."""
