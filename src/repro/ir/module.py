"""IR containers: Module, Function, Block, GlobalArray.

A :class:`Module` owns global arrays and functions. A :class:`Function`
owns an ordered list of :class:`Block`; the first block is the entry.
Blocks are identified by string labels unique within their function; edges
are ``(source_label, target_label)`` pairs, the unit the profiler counts.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.values import VirtualReg


class GlobalArray:
    """A global array of 32-bit ints.

    ``size`` is the element count; ``init`` optionally gives initial values
    (shorter than ``size`` means the tail is zero-filled).
    """

    def __init__(self, name, size, init=None):
        if size <= 0:
            raise IRError(f"global array {name!r} must have positive size")
        self.name = name
        self.size = size
        self.init = list(init) if init else []
        if len(self.init) > size:
            raise IRError(f"global array {name!r} initializer too long")

    def initial_values(self):
        """Full-length list of initial element values."""
        return self.init + [0] * (self.size - len(self.init))

    def __repr__(self):
        return f"GlobalArray({self.name!r}, size={self.size})"


class Block:
    """A basic block: straight-line instructions ending in a terminator."""

    def __init__(self, label):
        self.label = label
        self.instrs = []

    @property
    def terminator(self):
        """The block's terminator, or None if the block is unterminated."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    @property
    def body(self):
        """The non-terminator instructions."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)

    def successors(self):
        """Labels of successor blocks."""
        terminator = self.terminator
        if terminator is None:
            raise IRError(f"block {self.label!r} has no terminator")
        return terminator.successors()

    def __repr__(self):
        return f"Block({self.label!r}, {len(self.instrs)} instrs)"


class Function:
    """A function: parameters, blocks, and a virtual-register allocator."""

    def __init__(self, name, param_count=0, returns_value=True):
        self.name = name
        self.returns_value = returns_value
        self._next_vreg = 0
        self._next_label = 0
        self.blocks = []
        self._blocks_by_label = {}
        self.params = [self.new_vreg(f"arg{i}") for i in range(param_count)]

    # -- construction -----------------------------------------------------

    def new_vreg(self, name=None):
        """Allocate a fresh virtual register."""
        reg = VirtualReg(self._next_vreg, name)
        self._next_vreg += 1
        return reg

    def new_block(self, hint="bb"):
        """Create a new block with a unique label and append it."""
        label = f"{hint}{self._next_label}"
        self._next_label += 1
        return self.add_block(Block(label))

    def add_block(self, block):
        if block.label in self._blocks_by_label:
            raise IRError(f"duplicate block label {block.label!r} "
                          f"in function {self.name!r}")
        self.blocks.append(block)
        self._blocks_by_label[block.label] = block
        return block

    # -- navigation -------------------------------------------------------

    @property
    def entry(self):
        if not self.blocks:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def block(self, label):
        try:
            return self._blocks_by_label[label]
        except KeyError:
            raise IRError(f"no block {label!r} in function {self.name!r}") from None

    def edges(self):
        """All CFG edges as (source_label, target_label) pairs."""
        result = []
        for block in self.blocks:
            for successor in block.successors():
                result.append((block.label, successor))
        return result

    def predecessors(self):
        """Map from block label to the list of predecessor labels."""
        preds = {block.label: [] for block in self.blocks}
        for source, target in self.edges():
            preds[target].append(source)
        return preds

    def remove_blocks(self, labels):
        """Remove the given blocks (used by CFG simplification)."""
        labels = set(labels)
        self.blocks = [b for b in self.blocks if b.label not in labels]
        for label in labels:
            del self._blocks_by_label[label]

    def __repr__(self):
        return f"Function({self.name!r}, {len(self.blocks)} blocks)"


class Module:
    """A whole program: globals plus functions. Entry point is ``main``."""

    def __init__(self, name="module"):
        self.name = name
        self.functions = {}
        self.globals = {}

    def add_function(self, function):
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def add_global(self, array):
        if array.name in self.globals:
            raise IRError(f"duplicate global {array.name!r}")
        self.globals[array.name] = array
        return array

    def function(self, name):
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r} in module") from None

    def dump(self):
        """Human-readable listing of the whole module."""
        lines = []
        for array in self.globals.values():
            lines.append(f"global {array.name}[{array.size}]")
        for function in self.functions.values():
            params = ", ".join(repr(p) for p in function.params)
            lines.append(f"func {function.name}({params}):")
            for block in function.blocks:
                lines.append(f"  {block.label}:")
                for instr in block.instrs:
                    lines.append(f"    {instr!r}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"Module({self.name!r}, {len(self.functions)} functions, "
                f"{len(self.globals)} globals)")
