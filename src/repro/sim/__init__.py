"""x86-32 machine simulator and cycle cost model.

The simulator executes the *bytes* of a linked binary — it decodes the
emitted byte stream with the same decoder the gadget scanners use and has
no side channel into the compiler, so a diversified binary that broke
semantics produces observably wrong output.

Cycle accounting uses a two-resource (issue bandwidth vs. memory port)
block-level model — see :mod:`repro.sim.costs` — which reproduces the key
hardware behaviour the paper's numbers rest on: NOPs are almost free in
memory-bound code (470.lbm) and expensive in issue-bound code
(400.perlbench, 482.sphinx3).

Execution has two engines sharing one set of semantics: the threaded-code
fast path (:mod:`repro.sim.fastpath`, the default) and the reference
``step()`` interpreter in :mod:`repro.sim.machine`, kept as the
correctness oracle. Select with ``Machine.run(engine=...)`` or the
``REPRO_SIM_ENGINE`` environment variable.
"""

from repro.sim.costs import (
    CostModel, DEFAULT_COST_MODEL, block_cost_table, cycles_from_counts,
    instr_issue_cost, instr_memory_cost,
)
from repro.sim.memory import Memory
from repro.sim.machine import Machine, SimResult, run_binary
from repro.sim.fastpath import run_machine, shared_decode_cache, shared_program
from repro.sim.analytic import (
    block_counts_from_profile, block_counts_from_sim, estimate_cycles,
)

__all__ = [
    "CostModel", "DEFAULT_COST_MODEL", "block_cost_table",
    "cycles_from_counts", "instr_issue_cost", "instr_memory_cost",
    "Memory", "Machine", "SimResult", "run_binary",
    "run_machine", "shared_decode_cache", "shared_program",
    "block_counts_from_profile", "block_counts_from_sim", "estimate_cycles",
]
