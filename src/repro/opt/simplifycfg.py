"""CFG simplification: unreachable-block removal, jump threading, merging.

Three transformations run to a fixpoint:

1. **Unreachable removal** — blocks not reachable from the entry are
   deleted.
2. **Jump threading** — a block whose body is empty and whose terminator
   is ``br X`` is bypassed: predecessors branch straight to ``X`` (the
   entry block is never threaded away).
3. **Block merging** — if ``A`` ends in ``br B`` and ``B`` has exactly one
   predecessor, ``B``'s instructions are appended to ``A`` and ``B`` dies.
"""

from __future__ import annotations

from repro.ir.instructions import Branch, CondBranch


def _retarget(function, old, new):
    """Rewrite every branch to ``old`` to branch to ``new``."""
    for block in function.blocks:
        terminator = block.terminator
        if isinstance(terminator, Branch):
            if terminator.target == old:
                terminator.target = new
        elif isinstance(terminator, CondBranch):
            if terminator.then_target == old:
                terminator.then_target = new
            if terminator.else_target == old:
                terminator.else_target = new


def _remove_unreachable(function):
    reachable = set()
    worklist = [function.entry.label]
    while worklist:
        label = worklist.pop()
        if label in reachable:
            continue
        reachable.add(label)
        worklist.extend(function.block(label).successors())
    dead = [b.label for b in function.blocks if b.label not in reachable]
    if dead:
        function.remove_blocks(dead)
    return len(dead)


def _thread_jumps(function):
    changed = 0
    entry_label = function.entry.label
    for block in list(function.blocks):
        if block.label == entry_label:
            continue
        if len(block.instrs) != 1:
            continue
        terminator = block.terminator
        if not isinstance(terminator, Branch):
            continue
        target = terminator.target
        if target == block.label:  # self-loop, leave alone
            continue
        _retarget(function, block.label, target)
        function.remove_blocks([block.label])
        changed += 1
    return changed


def _merge_blocks(function):
    changed = 0
    merged = True
    while merged:
        merged = False
        preds = function.predecessors()
        for block in list(function.blocks):
            terminator = block.terminator
            if not isinstance(terminator, Branch):
                continue
            target_label = terminator.target
            if target_label == block.label:
                continue
            if target_label == function.entry.label:
                continue
            if len(preds.get(target_label, ())) != 1:
                continue
            target = function.block(target_label)
            block.instrs = block.instrs[:-1] + target.instrs
            function.remove_blocks([target_label])
            changed += 1
            merged = True
            break
    return changed


def simplify_cfg(function):
    """Run all three transforms to a fixpoint; returns change count."""
    total = 0
    while True:
        changed = (_remove_unreachable(function)
                   + _thread_jumps(function)
                   + _merge_blocks(function))
        total += changed
        if not changed:
            return total
