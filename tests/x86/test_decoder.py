"""Decoder unit tests, including arbitrary-offset behaviour."""

import pytest

from repro.errors import DecodingError
from repro.x86 import EAX, EBX, ECX, decode, decode_all, try_decode
from repro.x86.instructions import Imm, Mem, Rel


def test_decode_sets_size_and_encoding():
    instr = decode(bytes.fromhex("b82a000000"))
    assert instr.mnemonic == "mov"
    assert instr.size == 5
    assert instr.encoding == bytes.fromhex("b82a000000")


def test_decode_at_offset():
    data = b"\x90" + bytes.fromhex("01d8")
    instr = decode(data, 1)
    assert instr.mnemonic == "add"
    assert instr.operands == (EAX, EBX)


def test_decode_signed_immediates():
    instr = decode(bytes.fromhex("b8ffffffff"))
    assert instr.operands[1] == Imm(-1)


def test_decode_rel8_negative():
    instr = decode(bytes.fromhex("ebfe"))
    assert instr.mnemonic == "jmp"
    assert instr.operands[0] == Rel(-2, 8)


def test_decode_ret_family():
    assert decode(b"\xc3").mnemonic == "ret"
    instr = decode(b"\xc2\x08\x00")
    assert instr.mnemonic == "ret"
    assert instr.operands == (Imm(8),)


def test_decode_indirect_branches():
    assert decode(bytes.fromhex("ffd0")).mnemonic == "call_reg"
    assert decode(bytes.fromhex("ffe0")).mnemonic == "jmp_reg"
    instr = decode(bytes.fromhex("ff5304"))
    assert instr.mnemonic == "call_reg"
    assert instr.operands == (Mem(base=EBX, disp=4),)


def test_decode_xchg_single_byte_forms():
    instr = decode(b"\x91")
    assert instr.mnemonic == "xchg"
    assert instr.operands == (EAX, ECX)


def test_0x90_is_nop_not_xchg():
    assert decode(b"\x90").mnemonic == "nop"


def test_decode_truncated_raises():
    with pytest.raises(DecodingError):
        decode(b"\xb8\x01")  # mov eax, imm32 cut short


def test_decode_unknown_opcode_raises():
    with pytest.raises(DecodingError):
        decode(b"\x0f\x05")  # syscall (64-bit), unsupported


def test_try_decode_returns_none():
    assert try_decode(b"\xfe") is None
    assert try_decode(b"") is None


def test_unsupported_extension_rejected():
    # F7 /1 is undefined in our subset (and reserved on real hardware).
    with pytest.raises(DecodingError):
        decode(bytes.fromhex("f7c8"))


def test_decode_all_linear_sweep():
    data = bytes.fromhex("5589e583ec085dc3")
    instrs = decode_all(data)
    assert [i.mnemonic for i in instrs] == [
        "push", "mov", "sub", "pop", "ret"]
    assert sum(i.size for i in instrs) == len(data)


def test_misaligned_decode_yields_different_instruction():
    # The Figure-2 phenomenon: decoding from +1 inside an instruction
    # produces a completely different stream.
    data = bytes.fromhex("b858c3c200")  # mov eax, 0x00c2c358
    whole = decode(data)
    assert whole.mnemonic == "mov"
    inside = decode(data, 1)
    assert inside.mnemonic == "pop"       # 58 = pop eax
    assert decode(data, 2).mnemonic == "ret"  # c3


def test_decode_setcc():
    instr = decode(bytes.fromhex("0f94c0"))
    assert instr.mnemonic == "sete"
    assert instr.operands == (EAX,)


def test_decode_shift_group():
    assert decode(bytes.fromhex("c1e003")).operands[1] == Imm(3)
    assert decode(bytes.fromhex("d1e0")).operands[1] == Imm(1)
    assert decode(bytes.fromhex("d3f8")).operands[1] == ECX
