"""Real edge instrumentation: counter increments inserted into the IR.

For every counter edge chosen by :mod:`repro.profiling.spanning_tree`:

- a **CFG edge** ``(a, b)`` is split: a fresh block holding the counter
  increment is placed on the edge and ``a``'s terminator retargeted;
- a **return edge** ``(a, EXIT)`` gets its increment immediately before
  the Return in ``a`` (that edge fires exactly when the Return executes).

Counters live in one global array ``__prof_counters``; the increment is
three IR instructions (load, add 1, store), which is what LLVM's lowered
profiling counters amount to. After the instrumented program runs —
under the interpreter or compiled and simulated — the counter vector plus
the :class:`InstrumentationMap` feed
:func:`repro.profiling.reconstruct.reconstruct_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfileError
from repro.ir.instructions import Binary, Branch, CondBranch, Return
from repro.ir.module import GlobalArray
from repro.ir.instructions import ALoad, AStore
from repro.ir.values import Const
from repro.profiling.spanning_tree import EXIT_NODE, choose_counter_edges

COUNTER_ARRAY = "__prof_counters"


@dataclass
class InstrumentationMap:
    """Maps counter indexes back to profile-graph edges.

    ``counters[k] == (function_name, source, target)`` in *original* label
    space (labels as they were before edge splitting), so reconstruction
    produces a profile for the uninstrumented build.
    """

    counters: list = field(default_factory=list)

    def counter_count(self):
        return len(self.counters)


def _increment(function, counter_index):
    """The three-instruction counter bump."""
    temp = function.new_vreg()
    bumped = function.new_vreg()
    return [
        ALoad(temp, COUNTER_ARRAY, Const(counter_index)),
        Binary("add", bumped, temp, Const(1)),
        AStore(COUNTER_ARRAY, Const(counter_index), bumped),
    ]


def instrument_module(module):
    """Insert edge counters into ``module`` (mutating it).

    Returns the :class:`InstrumentationMap`. The module gains the
    ``__prof_counters`` global; run the instrumented module and read that
    array back (interpreter: ``interp.globals[COUNTER_ARRAY]``; simulator:
    words at ``binary.data_symbols[COUNTER_ARRAY]``).
    """
    if COUNTER_ARRAY in module.globals:
        raise ProfileError("module is already instrumented")

    imap = InstrumentationMap()
    for function in module.functions.values():
        counter_edges, _tree = choose_counter_edges(function)
        for source, target in counter_edges:
            if source == EXIT_NODE:
                raise ProfileError(
                    "virtual entry edge chosen as a counter; the spanning "
                    "tree must always contain it")
            index = len(imap.counters)
            imap.counters.append((function.name, source, target))
            block = function.block(source)
            if target == EXIT_NODE:
                terminator = block.instrs[-1]
                if not isinstance(terminator, Return):
                    raise ProfileError(
                        f"exit edge from non-returning block {source!r}")
                block.instrs[-1:-1] = _increment(function, index)
            else:
                _split_edge(function, block, target, index)

    module.add_global(GlobalArray(COUNTER_ARRAY,
                                  max(1, len(imap.counters))))
    return imap


def _split_edge(function, source_block, target_label, counter_index):
    split = function.new_block("prof")
    split.instrs = _increment(function, counter_index)
    split.instrs.append(Branch(target_label))

    terminator = source_block.instrs[-1]
    if isinstance(terminator, Branch):
        terminator.target = split.label
    elif isinstance(terminator, CondBranch):
        if terminator.then_target == target_label:
            terminator.then_target = split.label
        if terminator.else_target == target_label:
            terminator.else_target = split.label
    else:
        raise ProfileError(
            f"cannot split edge out of {source_block.label!r}")


def counters_from_interp(interp):
    """Counter vector after an interpreted run of an instrumented module."""
    return list(interp.globals[COUNTER_ARRAY])


def counters_from_machine(machine, binary, count):
    """Counter vector read from simulated memory after a run."""
    base = binary.data_symbols[COUNTER_ARRAY]
    return [machine.memory.read_u32(base + 4 * index)
            for index in range(count)]
