"""Lockstep batch engine: simulate a whole variant population in one pass.

A population sweep — Figure 4's 25 variants per configuration, the
differential validator's seed matrix — used to cost one full simulation
per variant. But every NOP-inserted variant of a baseline executes the
*same* dynamic instruction sequence plus its inserted NOPs, so all of
those runs recompute information one baseline run already contains.

This engine executes the baseline once (with per-address counting) and
*derives* each variant's result analytically:

- ``output`` and ``exit_code`` are the baseline's — NOP insertion never
  changes them.
- ``instr_count`` is the baseline's plus, for every inserted NOP, the
  execution count of the instruction it precedes.
- ``addr_counts`` is the baseline's map remapped through the 1:1
  in-order pairing of carried instruction records, with each inserted
  NOP counted as often as its following carried instruction.

**Soundness.** The derivation is only valid when the variant really is
"baseline + Table-1 NOPs + recomputed offsets", so each variant must
first pass a NOP-transparency proof
(:class:`repro.analysis.transparency.TransparencyProver`, records
mode). The proof pins the record pairing the remap walks: every carried
record matches its baseline partner, every insertion is a
control-flow-neutral NOP, branch displacements and data references are
recomputed exactly. NOPs are inserted *before* the instruction they
ride with (after labels), so every branch, call and return target lands
at the head of a NOP run and falls through it — each inserted NOP
therefore executes exactly as many times as the carried instruction
that follows it, and a trailing NOP run (none in practice) would
execute zero times.

A §6 variant built through the generalized link plan arrives with its
count plan already attached: ``LinkedBinary.provenance`` carries the
merge walk's record classification in the equivalence-proof format, and
after a baseline-identity cross-check the engine derives from it
directly (``batch.variants_derived_plan``) — zero proof work for whole
plan-built §6 populations. A §6 variant *without* provenance (cache
restore, external build) gets the second chance instead: the
generalized equivalence proof (:class:`repro.analysis.equivalence.
EquivalenceProver`). When it succeeds, its per-record count plan drives
the same analytic derivation — substituted and relocated instructions
inherit their baseline partner's count through the generalized map,
sled skip jumps execute exactly as often as their function's first
instruction, and proven-dead sled NOPs execute zero times — so whole
§6 populations (substitution, bb-shift, reordering, composed with
NOPs) derive without a single real run. Only a variant *both* proofs
reject — a miscompiled build, a corrupted image — falls back to an
ordinary per-variant simulation, with a warning recorded on the
simulator (and surfaced as a ``batch.fallbacks`` counter), never a
wrong answer.

``REPRO_SIM_BATCH`` selects the mode: ``on`` (derive), ``off``
(simulate every variant individually — the old behavior), or ``check``
(derive AND simulate, raising
:class:`~repro.errors.BatchParityError` on any disagreement). Cycle
counts are *not* derived incrementally: the cost model's weights are
non-dyadic floats, so per-variant cycles are evaluated from each
variant's own records through the shared cost core
(:func:`repro.sim.costs.evaluator_for`) to stay bit-identical with the
per-variant path.
"""

from __future__ import annotations

import weakref

from repro.analysis.equivalence import (
    PLAN_CARRIED, PLAN_NOP, PLAN_SLED_JMP, PLAN_SLED_NOP,
    EquivalenceProver,
)
from repro.analysis.transparency import TransparencyProver
from repro.errors import BatchParityError, ReproError, SimulatorError
from repro.obs import metrics
from repro.obs.knobs import knob_value, validate_knob_value
from repro.obs.trace import span
from repro.sim import fastpath
from repro.sim.costs import DEFAULT_COST_MODEL, evaluator_for
from repro.sim.machine import SimResult, run_binary
from repro.sim.memory import DEFAULT_STACK_SIZE

#: ``run_binary``'s default step fuel, mirrored so the two paths agree.
DEFAULT_MAX_STEPS = 500_000_000


class PopulationSimulator:
    """Derive many variants' run results from one baseline execution.

    Construct one per (baseline, input vector); ``result_for(variant)``
    then returns a :class:`~repro.sim.machine.SimResult` bit-identical
    to ``run_binary(variant, ...)`` — same instruction count, output,
    exit code, and (when ``count_addresses`` is set) the same
    nonzero-only per-address profile.

    The baseline runs lazily, once, with address counting (the remap
    needs it); transparency proofs are memoized per variant. Variants
    that cannot be derived — failed proof, faulting baseline, or a
    derived instruction count past the step budget — are simulated
    individually, with the reason recorded once in :attr:`warnings`.
    """

    def __init__(self, baseline, input_values=(), *,
                 max_steps=DEFAULT_MAX_STEPS, count_addresses=False,
                 stack_size=DEFAULT_STACK_SIZE, mode=None):
        if mode is None:
            mode = knob_value("REPRO_SIM_BATCH")
        else:
            mode = validate_knob_value("REPRO_SIM_BATCH", mode)
        self.mode = mode
        self.baseline = baseline
        self.input_values = tuple(input_values)
        self.max_steps = max_steps
        self.count_addresses = count_addresses
        self.stack_size = stack_size
        #: Deduplicated fallback reasons, in first-occurrence order.
        self.warnings = []
        self._baseline_outcome = None  # (SimResult | None, error | None)
        self._baseline_identity = None
        self._prover = None
        self._proofs = weakref.WeakKeyDictionary()
        self._eq_prover = None
        self._eq_proofs = weakref.WeakKeyDictionary()

    # -- baseline ------------------------------------------------------------

    def baseline_result(self):
        """The counted baseline run (executed once, lazily).

        Re-raises the baseline's own :class:`~repro.errors.SimulatorError`
        (fault or step-limit) on every call if the run failed.
        """
        if self._baseline_outcome is None:
            metrics.inc("batch.baseline_runs")
            try:
                result = run_binary(
                    self.baseline, self.input_values,
                    max_steps=self.max_steps, count_addresses=True,
                    stack_size=self.stack_size)
                self._baseline_outcome = (result, None)
            except SimulatorError as error:
                self._baseline_outcome = (None, error)
        result, error = self._baseline_outcome
        if error is not None:
            raise error
        return result

    # -- proofs --------------------------------------------------------------

    def _plan_from_provenance(self, variant):
        """A §6 variant's link-time count plan, if it can stand in for a
        proof.

        ``LinkPlan.apply`` attaches :class:`~repro.backend.linkplan.
        PlanProvenance` to every variant that exercised a §6 feature;
        its count plan classifies each record exactly as the
        equivalence proof would. It is trusted only after the plan's
        baseline identity matches this simulator's baseline — the same
        cross-check the serve daemon's shard adoption performs — so a
        provenance from some *other* program's plan can never misderive.
        """
        provenance = getattr(variant, "provenance", None)
        if provenance is None or not provenance.features:
            return None
        if self._baseline_identity is None:
            self._baseline_identity = self.baseline.identity_hash()
        if provenance.baseline_identity() != self._baseline_identity:
            return None
        return provenance.count_plan

    def _proof(self, variant):
        report = self._proofs.get(variant)
        if report is None:
            if self._prover is None:
                self._prover = TransparencyProver(
                    self.baseline,
                    decode_cache=fastpath.shared_decode_cache(self.baseline))
            with span("batch_prove"):
                report = self._prover.prove(variant, mode="records")
            metrics.inc("batch.proofs")
            if not report.ok:
                metrics.inc("batch.proof_failures")
            self._proofs[variant] = report
        return report

    def _equivalence_proof(self, variant):
        """The memoized §6 equivalence proof for one variant."""
        report = self._eq_proofs.get(variant)
        if report is None:
            if self._eq_prover is None:
                self._eq_prover = EquivalenceProver(self.baseline)
            with span("batch_prove_equivalence"):
                report = self._eq_prover.prove(variant)
            metrics.inc("batch.equivalence_proofs")
            if not report.ok:
                metrics.inc("batch.equivalence_proof_failures")
            self._eq_proofs[variant] = report
        return report

    # -- derivation ----------------------------------------------------------

    def _derive(self, base, variant):
        """The variant's SimResult, computed from the counted baseline.

        Only called after the transparency proof succeeded, which
        guarantees the carried records of ``variant`` pair 1:1 in order
        with the baseline's records.
        """
        base_counts = base.addr_counts
        b_records = self.baseline.instr_records
        instr_count = base.instr_count
        counting = self.count_addresses
        counts = {}
        b_index = 0
        pending = []  # inserted NOPs awaiting their carried successor
        for record in variant.instr_records:
            if record.is_inserted_nop:
                pending.append(record)
                continue
            count = base_counts.get(b_records[b_index].address, 0)
            b_index += 1
            if count:
                instr_count += count * len(pending)
                if counting:
                    # The NOP run rides immediately before this carried
                    # instruction: same count for every NOP in it.
                    for nop in pending:
                        counts[nop.address] = count
                    counts[record.address] = count
            if pending:
                pending = []
        # A trailing NOP run has no carried successor and never
        # executes; like every zero-count address it stays out of the
        # nonzero-only map.
        return SimResult(list(base.output), base.exit_code, instr_count,
                         counts)

    def _derive_from_plan(self, base, variant, plan):
        """The §6 path: derive through an equivalence count plan.

        ``plan`` has one entry per variant record (see
        :class:`repro.analysis.equivalence.EquivalenceReport`); entries
        carry explicit baseline record indices, so this walk is correct
        under function reordering where the in-order pairing of
        :meth:`_derive` is not.
        """
        base_counts = base.addr_counts
        b_records = self.baseline.instr_records
        instr_count = base.instr_count
        counting = self.count_addresses
        counts = {}
        for record, entry in zip(variant.instr_records, plan):
            kind = entry[0]
            if kind == PLAN_CARRIED:
                count = base_counts.get(b_records[entry[1]].address, 0)
            elif kind == PLAN_NOP:
                count = base_counts.get(b_records[entry[1]].address, 0)
                instr_count += count
            elif kind == PLAN_SLED_JMP:
                count = base_counts.get(b_records[entry[1]].address, 0)
                for subtracted in entry[2]:
                    count -= base_counts.get(
                        b_records[subtracted].address, 0)
                instr_count += count
            else:  # PLAN_SLED_NOP: proven dead, executes zero times
                count = 0
            if counting and count:
                counts[record.address] = count
        return SimResult(list(base.output), base.exit_code, instr_count,
                         counts)

    # -- the public per-variant API ------------------------------------------

    def result_for(self, variant, *, max_steps=None):
        """Simulate-or-derive one variant; see the class docstring.

        ``max_steps`` overrides the simulator's step budget for this
        variant only (the differential validator's per-variant fuel);
        a derived instruction count past the budget falls back to a
        real run so :class:`~repro.errors.SimulationLimitExceeded`
        surfaces exactly as it would without the batch engine.
        """
        limit = self.max_steps if max_steps is None else max_steps
        if self.mode == "off":
            metrics.inc("batch.variants_simulated")
            return self._simulate(variant, limit)

        plan = self._plan_from_provenance(variant)
        from_provenance = plan is not None
        if plan is None:
            proof = self._proof(variant)
            if not proof.ok:
                # Not "baseline + NOPs" — a §6 transform or a miscompile.
                # The generalized equivalence proof decides which.
                equivalence = self._equivalence_proof(variant)
                if not equivalence.ok:
                    self._fallback(
                        "transparency and equivalence proofs failed; "
                        "simulating variant(s) individually: "
                        + equivalence.findings[0].describe())
                    return self._simulate(variant, limit)
                plan = equivalence.count_plan
                if any(entry[0] == PLAN_SLED_JMP and entry[2] is None
                       for entry in plan):
                    self._fallback(
                        "equivalence proof holds but a sled jump count "
                        "is underivable; simulating variant(s) "
                        "individually")
                    return self._simulate(variant, limit)
        try:
            base = self.baseline_result()
        except SimulatorError:
            self._fallback("baseline run failed; simulating variant(s) "
                           "individually")
            return self._simulate(variant, limit)

        with span("batch_derive"):
            if plan is None:
                derived = self._derive(base, variant)
            else:
                metrics.inc("batch.variants_derived_plan"
                            if from_provenance
                            else "batch.variants_derived_equivalence")
                derived = self._derive_from_plan(base, variant, plan)
        if derived.instr_count > limit:
            self._fallback("derived instruction count exceeds the step "
                           "budget; simulating variant(s) individually")
            return self._simulate(variant, limit)

        metrics.inc("batch.variants_derived")
        if self.mode == "check":
            self._check_parity(variant, derived, limit)
        return derived

    # -- helpers -------------------------------------------------------------

    def _simulate(self, variant, limit):
        return run_binary(variant, self.input_values, max_steps=limit,
                          count_addresses=self.count_addresses,
                          stack_size=self.stack_size)

    def _fallback(self, message):
        metrics.inc("batch.fallbacks")
        if message not in self.warnings:
            self.warnings.append(message)

    def _check_parity(self, variant, derived, limit):
        """check mode: run the variant for real and compare observables."""
        metrics.inc("batch.parity_checks")
        try:
            actual = self._simulate(variant, limit)
        except ReproError as error:
            raise BatchParityError(
                "batch parity check: the real run failed where the "
                f"derived one succeeded: {error}",
                context={"observable": "error", "derived": "success",
                         "actual": error.code}) from error
        for observable, ours, real in (
                ("instr_count", derived.instr_count, actual.instr_count),
                ("output", list(derived.output), list(actual.output)),
                ("exit_code", derived.exit_code, actual.exit_code),
                ("addr_counts", derived.addr_counts, actual.addr_counts)):
            if observable == "addr_counts" and not self.count_addresses:
                continue
            if ours != real:
                raise BatchParityError(
                    f"batch-derived {observable} diverged from the "
                    f"per-variant simulation",
                    context={"observable": observable, "derived": ours,
                             "actual": real})


def simulate_population(baseline, variants, input_values=(), *,
                        max_steps=DEFAULT_MAX_STEPS, count_addresses=False,
                        stack_size=DEFAULT_STACK_SIZE, mode=None):
    """Run a whole population; returns one SimResult per variant, in order.

    Each element is bit-identical to
    ``run_binary(variant, input_values, ...)``; exceptions a per-variant
    run would raise (faults, step-limit) surface identically from the
    corresponding position. ``mode`` overrides ``REPRO_SIM_BATCH``.
    """
    sim = PopulationSimulator(
        baseline, input_values, max_steps=max_steps,
        count_addresses=count_addresses, stack_size=stack_size, mode=mode)
    metrics.inc("batch.populations")
    with span("population_sim", variants=len(variants), mode=sim.mode):
        return [sim.result_for(variant) for variant in variants]


def population_cycles(baseline, variants, counts, model=DEFAULT_COST_MODEL):
    """Analytic cycles of a baseline and its variants under one profile.

    Evaluates every binary through the shared per-binary cost-table memo
    (:func:`repro.sim.costs.evaluator_for`) — bit-identical to calling
    :func:`repro.sim.analytic.estimate_cycles` on each binary. Returns
    ``(baseline_cycles, [variant_cycles, ...])``.
    """
    evaluator = evaluator_for(model)
    return (evaluator.cycles(baseline, counts),
            [evaluator.cycles(variant, counts) for variant in variants])
