"""End-to-end tests of the serve daemon over real TCP.

One daemon boots per module (mcf preloaded, one shard) and every test
drives it through :class:`~repro.serve.client.ServeClient` — the same
path production traffic takes: ndjson framing, typed wire errors,
per-user determinism, the memo fast path, symbolication, bounded-queue
backpressure and the stats endpoint.
"""

import asyncio
import contextlib
import threading

import pytest

from repro.errors import ServeError, ServeOverloadedError
from repro.serve import ServeClient, VariantServer
from repro.serve.protocol import encode_message, user_seed

PROGRAM = "429.mcf"
CONFIG = "0-30%"


class DaemonThread:
    """A VariantServer running on its own event-loop thread."""

    def __init__(self, **kwargs):
        self.server = VariantServer(port=0, **kwargs)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        serving = asyncio.create_task(self.server.serve_forever())
        await self._stop.wait()
        serving.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serving
        await self.server.close()

    def start(self):
        self._thread.start()
        self._ready.wait(timeout=120)
        return self

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


@pytest.fixture(scope="module")
def daemon():
    runner = DaemonThread(shards=1,
                          programs=[(PROGRAM, CONFIG)]).start()
    yield runner
    runner.stop()


@pytest.fixture
def client(daemon):
    with ServeClient(port=daemon.server.port) as connection:
        yield connection


def test_ping(client):
    assert client.ping()["ok"]


def test_variant_is_deterministic_per_user(client):
    first = client.variant(PROGRAM, CONFIG, "determinism")
    second = client.variant(PROGRAM, CONFIG, "determinism")
    assert first["seed"] == user_seed(PROGRAM, CONFIG, "determinism")
    assert second["variant"]["identity"] == first["variant"]["identity"]
    assert first["variant"]["verified"] == "stream"
    assert first["variant"]["inserted_nops"] > 0


def test_distinct_users_get_distinct_variants(client):
    identities = {client.variant(PROGRAM, CONFIG,
                                 f"distinct-{index}")["variant"]["identity"]
                  for index in range(5)}
    assert len(identities) == 5


def test_response_carries_overhead_estimate(client):
    response = client.variant(PROGRAM, CONFIG, "overhead")
    overhead = response["overhead"]
    assert overhead["predicted_cycles"] > overhead["baseline_cycles"] > 0
    assert 0 < overhead["predicted_overhead"] < 1


def test_repeat_request_hits_the_memo(client):
    client.variant(PROGRAM, CONFIG, "memo-user")
    repeat = client.variant(PROGRAM, CONFIG, "memo-user")
    assert repeat["cached"] is True
    assert repeat["source"] == "memo"


def test_symbolicate_round_trips_the_entry_point(daemon, client):
    state = daemon.server._states[(PROGRAM, CONFIG)]
    entry = state.build.link_baseline().entry
    response = client.symbolicate(PROGRAM, CONFIG, "sym-user", [entry, 2])
    assert response["symbolicatable"]
    exact, unmapped = response["frames"]
    assert exact["status"] == "exact"
    assert exact["baseline_address"] == entry
    assert unmapped["status"] == "unmapped"


def test_sec6_config_is_served_and_symbolicates_exactly(daemon, client):
    served = client.variant(PROGRAM, "30%+sec6", "sec6-user")
    assert served["ok"]
    assert served["variant"]["verified"] == "equivalence"
    state = daemon.server._states[(PROGRAM, "30%+sec6")]
    entry = state.build.link_baseline().entry
    response = client.symbolicate(PROGRAM, "30%+sec6", "sec6-user",
                                  [entry, 2])
    assert response["symbolicatable"]
    frame, unmapped = response["frames"]
    # The variant's entry fronts the entry function's bb-shift sled
    # (or the function itself when the seed drew a zero-byte sled);
    # either way it attributes to the baseline entry.
    assert frame["status"] in ("exact", "sled_jump")
    assert frame["baseline_address"] == entry
    assert unmapped["status"] == "unmapped"


def test_unknown_op_is_a_typed_error(client):
    response = client.request({"op": "frobnicate"}, raise_on_error=False)
    assert response["ok"] is False
    assert response["error"]["code"] == "serve.error"
    with pytest.raises(ServeError):
        client.request({"op": "frobnicate"})


def test_unknown_config_lists_choices(client):
    response = client.request(
        {"op": "variant", "program": PROGRAM, "config": "nope",
         "user": "u"}, raise_on_error=False)
    assert response["error"]["code"] == "serve.error"
    assert "30%+sec6" in response["error"]["context"]["choices"]


def test_missing_field_is_rejected(client):
    response = client.request({"op": "variant", "program": PROGRAM},
                              raise_on_error=False)
    assert response["ok"] is False


def test_malformed_json_line_is_rejected(daemon):
    import socket

    with socket.create_connection(("127.0.0.1", daemon.server.port),
                                  timeout=30) as raw:
        raw.sendall(b"this is not json\n")
        line = raw.makefile("rb").readline()
    import json
    response = json.loads(line)
    assert response["ok"] is False
    assert response["error"]["context"]["reason"] == "bad_json"


def test_backpressure_rejects_with_typed_code(daemon):
    """Pinch the queue and burst: some requests must be rejected with
    ``serve.overloaded`` while the daemon keeps serving the rest."""
    original = daemon.server.queue_depth
    daemon.server.queue_depth = 1
    rejected = []
    completed = []
    lock = threading.Lock()

    def worker(index):
        with ServeClient(port=daemon.server.port) as connection:
            for request in range(3):
                try:
                    connection.variant(PROGRAM, CONFIG,
                                       f"burst-{index}-{request}")
                except ServeOverloadedError as exc:
                    with lock:
                        rejected.append(exc.context["queue_depth"])
                else:
                    with lock:
                        completed.append(request)

    try:
        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        daemon.server.queue_depth = original
    assert rejected, "burst past queue depth 1 must trip backpressure"
    assert completed, "admitted requests must still complete"
    assert all(depth == 1 for depth in rejected)
    # The daemon is healthy afterwards.
    with ServeClient(port=daemon.server.port) as connection:
        assert connection.ping()["ok"]


def test_stats_reports_counters_and_occupancy(client):
    client.variant(PROGRAM, CONFIG, "stats-user")
    stats = client.stats()
    assert stats["queue"]["depth"] >= 1
    assert stats["shards"]["count"] == 1
    assert f"{PROGRAM}/{CONFIG}" in stats["programs"]
    assert stats["counters"]["serve.variants_served"] > 0
    assert stats["counters"]["serve.worker.variants"] > 0
    assert "serve.variant_ms" in stats["latency"]
    assert stats["verify_mode"] == "stream"
