"""Seeded miscompile injection: the differential oracle must fire.

For each planted bug class — wrong branch target, dropped instruction,
bad (non-neutral) NOP encoding — a short campaign with the test-only
``variant_hook`` corrupting every variant binary must produce findings,
classified at the *variant* stage (the reference interpreter and the
baseline are untouched, so the disagreement is attributable to the
variant alone). Divergences must shrink and the reproducer must replay
to a diverging result by corpus id.
"""

import pytest

from repro.fuzz import Corpus, FuzzParams, replay, run_fuzz_campaign
from repro.fuzz.generate import tiny_limits
from repro.fuzz.inject import BUG_CLASSES, make_hook

BUG_NAMES = sorted(BUG_CLASSES)


def _campaign(bug, *, shrink=False, programs=5):
    params = FuzzParams(programs=programs, variants=1, fuel=100_000,
                        limits=tiny_limits(), mutate_ratio=0.0,
                        variant_hook=make_hook(bug), shrink=shrink)
    corpus = Corpus()
    return params, corpus, run_fuzz_campaign(params, corpus)


@pytest.mark.parametrize("bug", BUG_NAMES)
def test_injected_bug_is_detected(bug):
    _params, _corpus, stats = _campaign(bug)
    assert stats.findings, f"{bug}: oracle never fired"
    # the corruption happened after baseline validation, so every
    # report must blame the variant stage
    assert {finding.report.stage for finding in stats.findings} \
        == {"variant"}


@pytest.mark.parametrize("bug", BUG_NAMES)
def test_injected_bug_reproducer_replays(bug):
    params, corpus, stats = _campaign(bug, shrink=True)
    assert stats.findings
    finding = stats.findings[0]
    entry_id = finding.shrunk_entry_id or finding.entry_id
    entry, result = replay(corpus, entry_id, params)
    assert result.reports, \
        f"{bug}: reproducer [{entry.entry_id}] no longer diverges"


def test_shrink_produces_smaller_reproducers():
    params, corpus, stats = _campaign("dropped_instruction", shrink=True)
    shrunk = [finding for finding in stats.findings
              if finding.shrunk_entry_id is not None]
    assert shrunk, "nothing shrank"
    for finding in shrunk:
        original = corpus.get(finding.entry_id)
        reduced = corpus.get(finding.shrunk_entry_id)
        assert len(reduced.source) < len(original.source)
        assert reduced.kind == "reproducer"
        assert finding.shrink_steps > 0
    assert stats.shrink_steps > 0


def test_clean_hook_produces_no_findings():
    """Identity hook: the harness itself must not create divergences."""
    params = FuzzParams(programs=4, variants=1, fuel=100_000,
                        limits=tiny_limits(), mutate_ratio=0.0,
                        variant_hook=lambda binary: binary)
    stats = run_fuzz_campaign(params, Corpus())
    assert stats.findings == []


def test_unknown_bug_class_raises():
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        make_hook("off_by_one_in_the_spec")
