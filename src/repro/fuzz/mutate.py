"""AST-level mutators: evolve interesting corpus programs.

Each mutator takes a seeded ``Random`` and a *copy* of a parsed program
and edits it in place, returning ``True`` when it found an applicable
site. :func:`mutate_program` composes them: it deep-copies the input,
tries randomly-chosen mutators until one fires, pretty-prints, and
re-parses + re-checks the result — a mutant that no longer parses or
type-checks is discarded (returned as ``None``) rather than wasting a
differential execution on it.

Mutation can, unlike generation, break the termination guarantees
(twiddling a loop bound, deleting a fuel decrement). That is by design:
those programs probe the pipeline's fuel guards, and the campaign
classifies a reference-interpreter timeout as a skip, not a divergence.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.minc import ast_nodes as ast
from repro.minc.astutil import (
    clone, expr_sites, get_site, set_site, stmt_sites, subexpressions,
    walk,
)
from repro.minc.pretty import pretty_print
from repro.minc.parser import parse
from repro.minc.sema import analyze

from repro.fuzz.generate import INTERESTING

_ARITH = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")
_COMPARE = ("==", "!=", "<", "<=", ">", ">=")
_LOGIC = ("&&", "||")
_UNARY = ("-", "!", "~")

#: Loop bounds a mutator may introduce are capped: large bounds only
#: prove the fuel guard works (which the campaign already counts as a
#: skip), so most twiddles stay in terminating territory.
MAX_MUTATED_BOUND = 4096


def _int_literals(program):
    return [node for node in walk(program) if isinstance(node, ast.IntLit)]


def twiddle_constant(rng, program):
    """Replace one integer literal with a neighbour or boundary value."""
    literals = _int_literals(program)
    if not literals:
        return False
    node = rng.choice(literals)
    value = node.value
    node.value = rng.choice((
        value + 1, max(value - 1, -MAX_MUTATED_BOUND),
        value * 2 if abs(value) < MAX_MUTATED_BOUND else value // 2,
        rng.choice(INTERESTING),
    ))
    return True


def swap_operator(rng, program):
    """Swap one operator for another in its class (arity-preserving)."""
    nodes = [node for node in walk(program)
             if isinstance(node, (ast.BinaryExpr, ast.UnaryExpr))]
    if not nodes:
        return False
    node = rng.choice(nodes)
    if isinstance(node, ast.UnaryExpr):
        node.op = rng.choice([op for op in _UNARY if op != node.op])
        return True
    for family in (_ARITH, _COMPARE, _LOGIC):
        if node.op in family:
            node.op = rng.choice([op for op in family if op != node.op])
            return True
    return False


def negate_condition(rng, program):
    """Logically invert one if/while/for condition."""
    nodes = [node for node in walk(program)
             if isinstance(node, (ast.If, ast.While, ast.For))
             and getattr(node, "cond", None) is not None]
    if not nodes:
        return False
    node = rng.choice(nodes)
    node.cond = ast.UnaryExpr(op="!", operand=node.cond)
    return True


def delete_statement(rng, program):
    """Remove one non-declaration statement.

    Declarations stay (deleting one almost always breaks name
    resolution, and the sema re-check would just discard the mutant);
    everything else — including a fuel decrement or a ``return`` —
    is fair game.
    """
    sites = [(body, index) for body, index in stmt_sites(program)
             if not isinstance(body[index], ast.VarDecl)]
    if not sites:
        return False
    body, index = rng.choice(sites)
    del body[index]
    return True


def duplicate_statement(rng, program):
    """Insert a deep copy of one statement right after itself."""
    sites = [(body, index) for body, index in stmt_sites(program)
             if not isinstance(body[index], ast.VarDecl)]
    if not sites:
        return False
    body, index = rng.choice(sites)
    body.insert(index + 1, clone(body[index]))
    return True


def splice_expression(rng, program, donor=None):
    """Replace one expression subtree with one from ``donor`` (or from
    elsewhere in the same program when no donor is given).

    Name resolution is not pre-checked — the sema re-check in
    :func:`mutate_program` filters spliced references that don't exist
    in the recipient scope, and a same-program splice usually resolves.
    """
    sites = expr_sites(program)
    if not sites:
        return False
    pool = subexpressions(donor if donor is not None else program)
    if not pool:
        return False
    site = rng.choice(sites)
    set_site(site, clone(rng.choice(pool)))
    return True


def wrap_in_if(rng, program):
    """Guard one statement with a fresh condition."""
    sites = [(body, index) for body, index in stmt_sites(program)
             if not isinstance(body[index], ast.VarDecl)]
    if not sites:
        return False
    body, index = rng.choice(sites)
    literals = _int_literals(program)
    cond = (clone(rng.choice(literals)) if literals
            else ast.IntLit(value=1))
    body[index] = ast.If(cond=cond, then_body=[body[index]])
    return True


def swap_branches(rng, program):
    """Exchange the then/else arms of one two-armed ``if``."""
    nodes = [node for node in walk(program)
             if isinstance(node, ast.If) and node.else_body]
    if not nodes:
        return False
    node = rng.choice(nodes)
    node.then_body, node.else_body = node.else_body, node.then_body
    return True


#: (weight, mutator) — weights bias toward the cheap, high-yield edits.
MUTATORS = (
    (4, twiddle_constant),
    (3, swap_operator),
    (2, negate_condition),
    (2, delete_statement),
    (2, duplicate_statement),
    (3, splice_expression),
    (1, wrap_in_if),
    (1, swap_branches),
)

_WEIGHTED = tuple(mutator for weight, mutator in MUTATORS
                  for _ in range(weight))


def mutate_program(rng, program, donor=None, *, attempts=8):
    """One validated mutant of ``program``, or ``None``.

    Tries up to ``attempts`` (mutator, site) draws; the first edit that
    still parses and type-checks after a print/parse round trip wins.
    ``donor`` feeds :func:`splice_expression` with foreign subtrees.
    """
    for _ in range(attempts):
        candidate = clone(program)
        mutator = rng.choice(_WEIGHTED)
        if mutator is splice_expression:
            applied = mutator(rng, candidate, donor)
        else:
            applied = mutator(rng, candidate)
        if not applied:
            continue
        text = pretty_print(candidate)
        try:
            reparsed = parse(text)
            analyze(reparsed)
        except ReproError:
            continue  # ungrammatical/ill-typed mutant: discard
        return reparsed
    return None
