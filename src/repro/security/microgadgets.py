"""A microgadgets-style scanner.

Homescu et al.'s WOOT'12 "Microgadgets" paper (cited as the second attack
framework in §5.2) shows Turing-complete ROP from gadgets of **2-3
bytes**: such tiny gadgets are so frequent in ordinary code that they
survive many defenses. This scanner admits only gadgets whose whole
encoding (terminator included) is at most 3 bytes and rebuilds the paper's
operation categories from combinations of them:

- ``pop r; ret`` (2 bytes) — load,
- ``xor r, r; ret`` / ``inc r; ret`` / ``dec r; ret`` (3 bytes) —
  constants by arithmetic,
- ``mov/xchg r, r; ret`` and ``add/sub r, r; ret`` (3 bytes) — movement
  and arithmetic,
- ``int 0x80; ret`` (3 bytes) — syscall,
- ``mov [r], r; ret`` / ``mov r, [r]; ret`` (3 bytes) — memory.

Feasibility asks for the same canonical payload as the ROPgadget-style
scanner, but EAX may be constructed arithmetically (``xor eax, eax`` then
``inc eax`` repeats) when no direct ``pop eax`` survives — the
characteristic microgadgets trick.
"""

from __future__ import annotations

from repro.security.ropgadget import RopGadgetScanner

MAX_MICROGADGET_BYTES = 3


class MicroGadgetScanner(RopGadgetScanner):
    """The microgadgets lens: only 2-3 byte gadgets count."""

    name = "microgadgets"
    max_body = 1

    def scan(self, gadgets):
        tiny = {offset: gadget for offset, gadget in gadgets.items()
                if gadget.size <= MAX_MICROGADGET_BYTES}
        return super().scan(tiny)

    def can_construct_value(self, toolkit, register_name):
        """Arbitrary small constants via zero + increment chains."""
        return (toolkit.has("zero", register_name)
                and (toolkit.has("incdec", ("inc", register_name))
                     or toolkit.has("incdec", ("dec", register_name))))

    def attack_requirements(self, toolkit):
        return {
            "set eax": (self.can_set_register_to(toolkit, "eax", 0)
                        or self.can_construct_value(toolkit, "eax")),
            "set ebx": (self.can_set_register(toolkit, "ebx")
                        or self.can_construct_value(toolkit, "ebx")),
            "syscall": toolkit.has("syscall"),
        }
