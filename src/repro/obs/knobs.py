"""Declarative registry for every ``REPRO_*`` environment knob.

Before this module existed, each knob was an ad-hoc ``os.environ.get``
at its point of use, and each call site invented its own parsing — which
is how ``REPRO_STATIC_VERIFY=ful`` silently meant ``sample`` and
``REPRO_WORKERS=abc`` died with a bare ``ValueError`` deep inside the
population builder. Here every knob is declared once (name, type,
allowed values, default, docstring) and resolved through one parser
that rejects anything it does not recognize with a typed
:class:`~repro.errors.ConfigError` naming the valid choices.

Usage::

    from repro.obs.knobs import knob_value
    engine = knob_value("REPRO_SIM_ENGINE")      # "fast" | "reference"

Values are read from the environment at call time (not import time), so
tests and benchmarks that set knobs mid-process see their changes.
``repro-diversify knobs`` prints the full registry; the lint in
``tools/lint_errors.py`` forbids direct ``os.environ`` access to
``REPRO_*`` names anywhere else under ``src/repro/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Truthy / falsy spellings accepted by boolean knobs.
_TRUE = ("1", "on", "yes", "true")
_FALSE = ("0", "off", "no", "false")


@dataclass(frozen=True)
class Knob:
    """One declared environment variable.

    ``kind`` is ``"choice"``, ``"bool"``, ``"int"`` or ``"path"``;
    ``choices`` maps every accepted spelling (lower-cased) to its
    canonical parsed value for choice/bool knobs. ``default`` is the
    parsed value used when the variable is unset or empty (empty string
    means "unset" for every knob, matching the historical call sites).
    """

    name: str
    kind: str
    default: object
    doc: str
    choices: dict = field(default_factory=dict)
    minimum: int | None = None

    def canonical_choices(self):
        """The distinct parsed values a choice knob can take, in first-
        spelling order (for error messages and the CLI table)."""
        seen = []
        for value in self.choices.values():
            if value not in seen:
                seen.append(value)
        return seen

    def parse(self, raw):
        """Parse one raw environment string; raises ConfigError."""
        if raw is None or raw.strip() == "":
            return self.default
        text = raw.strip()
        if self.kind in ("choice", "bool"):
            value = self.choices.get(text.lower())
            if value is None and text.lower() not in self.choices:
                raise ConfigError(
                    f"{self.name}={raw!r} is not a valid value; "
                    f"choose one of {sorted(self.choices)}",
                    context={"knob": self.name, "value": raw,
                             "choices": sorted(self.choices)})
            return value
        if self.kind == "int":
            try:
                value = int(text)
            except ValueError:
                raise ConfigError(
                    f"{self.name}={raw!r} is not an integer",
                    context={"knob": self.name, "value": raw,
                             "choices": ["any integer"
                                         if self.minimum is None else
                                         f"integer >= {self.minimum}"]})
            if self.minimum is not None and value < self.minimum:
                raise ConfigError(
                    f"{self.name}={raw!r} is below the minimum "
                    f"{self.minimum}",
                    context={"knob": self.name, "value": raw,
                             "minimum": self.minimum})
            return value
        # "path": any non-empty string is a valid path-ish value.
        return text

    def value(self, environ=None):
        """The knob's current parsed value (environment at call time)."""
        environ = os.environ if environ is None else environ
        return self.parse(environ.get(self.name))


#: name → Knob; populated by :func:`register` below, iterated by the
#: ``repro-diversify knobs`` command and the round-trip tests.
REGISTRY = {}


def register(knob):
    REGISTRY[knob.name] = knob
    return knob


def knob_value(name, environ=None):
    """Resolve one registered knob from the environment.

    Raises :class:`~repro.errors.ConfigError` for an unregistered name
    (a typo in *our* code, not the user's) or an invalid value.
    """
    knob = REGISTRY.get(name)
    if knob is None:
        raise ConfigError(f"unregistered knob {name!r}",
                          context={"knob": name,
                                   "registered": sorted(REGISTRY)})
    return knob.value(environ)


def validate_knob_value(name, value):
    """Validate an explicitly-passed value against a registered knob.

    The parameter-form twin of :func:`knob_value`: callers that accept a
    knob's value as a function argument (``Machine.run(engine=...)``,
    ``simulate_population(mode=...)``) route it through here so an
    unknown value raises the *same* typed
    :class:`~repro.errors.ConfigError` — same context shape, same
    choices listing — as a bad environment variable would. Canonical
    parsed values pass through unchanged; strings are parsed exactly
    like environment text (so alternate spellings normalize).
    """
    knob = REGISTRY.get(name)
    if knob is None:
        raise ConfigError(f"unregistered knob {name!r}",
                          context={"knob": name,
                                   "registered": sorted(REGISTRY)})
    if isinstance(value, str):
        return knob.parse(value)
    if knob.kind in ("choice", "bool"):
        if value in knob.canonical_choices():
            return value
        raise ConfigError(
            f"{name}={value!r} is not a valid value; "
            f"choose one of {sorted(knob.choices)}",
            context={"knob": name, "value": value,
                     "choices": sorted(knob.choices)})
    if knob.kind == "int" and isinstance(value, int):
        if knob.minimum is not None and value < knob.minimum:
            raise ConfigError(
                f"{name}={value!r} is below the minimum {knob.minimum}",
                context={"knob": name, "value": value,
                         "minimum": knob.minimum})
        return value
    raise ConfigError(
        f"{name}={value!r} is not a valid value",
        context={"knob": name, "value": value})


def all_knobs():
    """Every registered knob, sorted by name."""
    return [REGISTRY[name] for name in sorted(REGISTRY)]


def _bool_choices():
    choices = {}
    for spelling in _TRUE:
        choices[spelling] = True
    for spelling in _FALSE:
        choices[spelling] = False
    return choices


# -- the registry ------------------------------------------------------------
# Every REPRO_* variable the pipeline, simulator, cache, CLI and
# benchmarks consult. Adding a knob here is the only sanctioned way to
# read a new REPRO_* variable (enforced by tools/lint_errors.py).

register(Knob(
    name="REPRO_SIM_ENGINE", kind="choice", default="fast",
    choices={"fast": "fast", "reference": "reference"},
    doc="Simulator execute path: 'fast' (threaded-code interpreter) or "
        "'reference' (the step loop). Default fast."))

register(Knob(
    name="REPRO_SIM_BATCH", kind="choice", default="on",
    choices={"off": "off", "0": "off", "no": "off", "false": "off",
             "on": "on", "1": "on", "yes": "on", "true": "on",
             "check": "check"},
    doc="Lockstep batch engine for population simulation: 'on' "
        "(default — derive proven variants from one baseline run), "
        "'check' (derive AND simulate each variant, raising "
        "BatchParityError on any mismatch) or 'off' (simulate every "
        "variant individually)."))

register(Knob(
    name="REPRO_STATIC_VERIFY", kind="choice", default=None,
    choices={"off": None, "no": None, "false": None, "0": None,
             "sample": "sample", "on": "sample", "yes": "sample",
             "true": "sample", "1": "sample",
             "all": "all", "full": "all"},
    doc="Post-link static-verify gate: off (default), 'sample' "
        "(baseline + every Nth variant) or 'all' (every link)."))

register(Knob(
    name="REPRO_LINK_PLAN", kind="bool", default=True,
    choices=_bool_choices(),
    doc="Incremental-linking kill switch: 0/off routes every link "
        "through the full linker. Default on."))

register(Knob(
    name="REPRO_WORKERS", kind="int", default=1, minimum=0,
    doc="Process-pool width for population builds and batch scans "
        "(0 = cpu count, clamped to cores). Default 1 (serial)."))

register(Knob(
    name="REPRO_CACHE_DIR", kind="path", default=None,
    doc="Root of the content-addressed variant artifact cache. "
        "Unset/empty disables caching."))

register(Knob(
    name="REPRO_TRACE", kind="path", default=None,
    doc="JSON-lines span-trace output path. Unset disables trace "
        "recording entirely (the <2%-overhead default)."))

register(Knob(
    name="REPRO_TRACE_RING", kind="int", default=4096, minimum=1,
    doc="Capacity of the in-process span ring buffer used when "
        "tracing is enabled."))

register(Knob(
    name="REPRO_POPULATION", kind="int", default=25, minimum=1,
    doc="Population size used by the table/figure benchmarks "
        "(paper: 25 variants)."))

register(Knob(
    name="REPRO_PERF_SEEDS", kind="int", default=5, minimum=1,
    doc="Seeds averaged per configuration by the overhead benchmarks."))

register(Knob(
    name="REPRO_CHECK_VARIANTS", kind="int", default=10, minimum=1,
    doc="Variants per workload validated by the check campaign "
        "tracker."))

register(Knob(
    name="REPRO_CHECK_FAULT_SEEDS", kind="int", default=5, minimum=1,
    doc="Seeds per injector in the check campaign's fault sweep."))

register(Knob(
    name="REPRO_FUZZ_PROGRAMS", kind="int", default=200, minimum=1,
    doc="Candidate budget of a differential fuzzing campaign "
        "(repro-diversify fuzz)."))

register(Knob(
    name="REPRO_FUZZ_VARIANTS", kind="int", default=2, minimum=1,
    doc="Diversified seeds per paper config each fuzz candidate is "
        "validated against."))

register(Knob(
    name="REPRO_FUZZ_SECONDS", kind="int", default=0, minimum=0,
    doc="Wall-clock budget of a fuzz campaign in seconds "
        "(0 = candidate budget only)."))

register(Knob(
    name="REPRO_FUZZ_FUEL", kind="int", default=200_000, minimum=1000,
    doc="Reference-interpreter step budget per fuzz candidate; a "
        "candidate exceeding it is classified as a timeout skip."))

register(Knob(
    name="REPRO_FUZZ_DIR", kind="path", default=None,
    doc="On-disk fuzz corpus root (content-addressed entries, resumed "
        "across campaigns). Unset keeps the corpus in memory."))

register(Knob(
    name="REPRO_SERVE_PORT", kind="int", default=0, minimum=0,
    doc="TCP port of the variant distribution daemon "
        "(repro-diversify serve). 0 (default) picks a free port."))

register(Knob(
    name="REPRO_SERVE_SHARDS", kind="int", default=0, minimum=0,
    doc="Seed-space shard count of the serve daemon — each shard is a "
        "single-process worker pool holding the lowered unit and "
        "compiled LinkPlan. 0 (default) = cpu count."))

register(Knob(
    name="REPRO_SERVE_QUEUE_DEPTH", kind="int", default=64, minimum=1,
    doc="Bound on in-flight serve requests; beyond it new requests get "
        "a typed serve.overloaded rejection (HTTP-429 analogue)."))

register(Knob(
    name="REPRO_SERVE_VERIFY", kind="choice", default="stream",
    choices={"stream": "stream", "full": "full", "off": None,
             "no": None, "false": None, "0": None},
    doc="Per-request verification of served variants: 'stream' "
        "(default — the fused transparency stream proof), 'full' "
        "(five-pass verify_binary + transparency, ~25x slower) or "
        "off."))

register(Knob(
    name="REPRO_SERVE_MEMO", kind="int", default=4096, minimum=0,
    doc="Capacity of the serve daemon's in-memory response memo (the "
        "cache-hit fast path). 0 disables memoization."))
