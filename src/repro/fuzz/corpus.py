"""Content-addressed fuzzing corpus with deterministic replay.

A corpus entry is (source text, input vector, provenance). Its id is a
hash of exactly the parts that determine execution — the pretty-printed
source and the inputs — so the same program reached twice (generated on
one machine, mutated into existence on another) lands on the same id,
and ``repro-diversify fuzz --replay <id>`` re-runs precisely what the
campaign ran.

On-disk layout mirrors :mod:`repro.artifacts`: two-level fan-out
``<root>/<id[:2]>/<id>.json``, atomic writes (temp file + ``os.replace``)
so a crashed campaign never leaves a torn entry, and best-effort reads —
a corrupt or unreadable file is skipped, not fatal. With ``root=None``
the corpus is memory-only (the smoke-campaign default).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field

from repro.errors import ReproError

#: Length of the hex id prefix used as the entry id. 64 bits of the
#: SHA-256 — collisions would need ~2^32 entries, far past any campaign.
_ID_HEX_CHARS = 16


def derive_seed(tag, *parts):
    """A deterministic integer seed from a tag and arbitrary parts.

    Used everywhere the fuzzer needs a fresh-but-reproducible random
    stream: candidate generation (``derive_seed("gen", campaign_seed,
    index)``), input vectors, and the differential retry seed. Unlike
    ``hash()``, stable across processes and Python versions.
    """
    digest = hashlib.sha256()
    digest.update(str(tag).encode("utf-8"))
    for part in parts:
        digest.update(b"\x00")
        digest.update(repr(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


def entry_id_for(source, inputs):
    """The content address of (source, inputs)."""
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00inputs\x00")
    digest.update(repr(tuple(inputs)).encode("utf-8"))
    return digest.hexdigest()[:_ID_HEX_CHARS]


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus member: a program, its inputs, and how it got here."""

    entry_id: str
    source: str
    inputs: tuple
    kind: str                 # "seed" | "generated" | "mutant" | "reproducer"
    parent: str | None = None  # entry id this one was mutated/shrunk from
    features: tuple = ()       # coverage features that were new on admission

    @classmethod
    def create(cls, source, inputs, kind, *, parent=None, features=()):
        inputs = tuple(inputs)
        return cls(entry_id=entry_id_for(source, inputs), source=source,
                   inputs=inputs, kind=kind, parent=parent,
                   features=tuple(sorted(features)))

    def to_json(self):
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        return cls(entry_id=data["entry_id"], source=data["source"],
                   inputs=tuple(data["inputs"]), kind=data["kind"],
                   parent=data.get("parent"),
                   features=tuple(data.get("features", ())))


class Corpus:
    """The set of interesting candidates, optionally persisted.

    ``root=None`` keeps everything in memory. With a root directory,
    every admitted entry is also written to
    ``<root>/<id[:2]>/<id>.json`` and entries already on disk are
    visible to :meth:`get`/:meth:`ids` — a later campaign pointed at the
    same directory resumes from the accumulated corpus.
    """

    def __init__(self, root=None):
        self.root = os.fspath(root) if root is not None else None
        self._entries = {}
        if self.root is not None:
            self._load()

    # -- persistence ---------------------------------------------------------

    def _path(self, entry_id):
        return os.path.join(self.root, entry_id[:2], f"{entry_id}.json")

    def _load(self):
        """Index whatever is already on disk; unreadable files skipped."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(shard_dir, name),
                              encoding="utf-8") as handle:
                        entry = CorpusEntry.from_json(handle.read())
                except (OSError, ValueError, KeyError):
                    continue  # torn/corrupt entry: replay just won't find it
                self._entries[entry.entry_id] = entry

    def _persist(self, entry):
        """Atomic best-effort write, exactly the artifact-cache idiom."""
        path = self._path(entry.entry_id)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            handle, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp")
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(entry.to_json())
            os.replace(temp_path, path)
        except OSError:
            pass  # a read-only corpus dir degrades to memory-only

    # -- the set -------------------------------------------------------------

    def __len__(self):
        return len(self._entries)

    def __contains__(self, entry_id):
        return entry_id in self._entries

    def ids(self):
        return sorted(self._entries)

    def entries(self):
        return [self._entries[entry_id] for entry_id in self.ids()]

    def get(self, entry_id):
        """The entry for ``entry_id``, or raise a typed error.

        Prefix lookup is supported (``--replay 3fa9`` finds the unique
        entry starting with ``3fa9``) because humans paste prefixes.
        """
        entry = self._entries.get(entry_id)
        if entry is not None:
            return entry
        matches = [known for known in self._entries
                   if known.startswith(entry_id)]
        if len(matches) == 1:
            return self._entries[matches[0]]
        raise ReproError(
            f"corpus entry {entry_id!r} "
            + ("is ambiguous" if matches else "not found"),
            code="fuzz.corpus",
            context={"entry_id": entry_id, "matches": matches,
                     "corpus_size": len(self._entries),
                     "root": self.root})

    def add(self, entry):
        """Admit ``entry``; returns False when the id is already present."""
        if entry.entry_id in self._entries:
            return False
        self._entries[entry.entry_id] = entry
        if self.root is not None:
            self._persist(entry)
        return True
