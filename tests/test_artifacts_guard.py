"""VariantCache concurrent-reader/writer guard (the framed entry format).

The serve daemon's shard workers and population-pool workers read and
write the same cache directory concurrently; these tests pin the
guarantees the framing gives them: torn/partial files are detected and
quarantined (never returned as a half-unpickled binary), unframed v1
entries are invalidated, a racing writer's completed ``os.replace`` is
picked up by the read retry, and concurrent writers of the same key
never produce a corrupt read.
"""

import os
import threading

import pytest

from repro.artifacts import VariantCache, _ENTRY_MAGIC, _HEADER_SIZE
from repro.pipeline import compile_and_link

SOURCE = """
int main() {
  int total = 0;
  for (int index = 0; index < 10; index = index + 1) {
    total = total + index;
  }
  return total;
}
"""


@pytest.fixture
def binary():
    return compile_and_link(SOURCE, "guard")


@pytest.fixture
def cache(tmp_path):
    return VariantCache(tmp_path)


def _entry_path(cache, key):
    return os.path.join(cache.root, key[:2], key + ".pkl")


def test_round_trip(cache, binary):
    cache.put("a" * 64, binary)
    assert cache.get("a" * 64).identity_hash() == binary.identity_hash()
    assert cache.stats() == {"hits": 1, "misses": 0, "puts": 1,
                             "corrupt": 0}


def test_truncated_entry_is_quarantined(cache, binary):
    key = "b" * 64
    cache.put(key, binary)
    path = _entry_path(cache, key)
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[:len(blob) // 2])  # torn write / partial copy
    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert not os.path.exists(path), "corrupt entry must be unlinked"
    # The slot is usable again.
    cache.put(key, binary)
    assert cache.get(key) is not None


def test_unframed_v1_entry_is_invalidated(cache, binary):
    import pickle

    key = "c" * 64
    path = _entry_path(cache, key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(binary, handle)  # pre-framing format: no header
    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert not os.path.exists(path)


def test_flipped_payload_bit_fails_digest(cache, binary):
    key = "d" * 64
    cache.put(key, binary)
    path = _entry_path(cache, key)
    blob = bytearray(open(path, "rb").read())
    blob[_HEADER_SIZE + 10] ^= 0x40
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    assert cache.get(key) is None
    assert cache.corrupt == 1


def test_header_survives_format_assumptions(cache, binary):
    key = "e" * 64
    cache.put(key, binary)
    blob = open(_entry_path(cache, key), "rb").read()
    assert blob.startswith(_ENTRY_MAGIC)
    length = int.from_bytes(blob[len(_ENTRY_MAGIC):len(_ENTRY_MAGIC) + 8],
                            "little")
    assert len(blob) == _HEADER_SIZE + length


def test_concurrent_writers_and_readers_never_see_torn_data(tmp_path,
                                                            binary):
    """Hammer one key from writer and reader threads.

    Readers through independent cache handles must only ever observe
    ``None`` (entry not visible yet) or a binary whose identity matches
    — never an exception or a wrong payload — and nothing may be
    counted corrupt, since ``os.replace`` publishes entries atomically.
    """
    key = "f" * 64
    expected = binary.identity_hash()
    failures = []
    stop = threading.Event()

    def writer():
        writer_cache = VariantCache(tmp_path)
        for _ in range(30):
            writer_cache.put(key, binary)

    def reader():
        reader_cache = VariantCache(tmp_path)
        while not stop.is_set():
            got = reader_cache.get(key)
            if got is not None and got.identity_hash() != expected:
                failures.append("wrong payload")
        if reader_cache.corrupt:
            failures.append(f"corrupt={reader_cache.corrupt}")

    readers = [threading.Thread(target=reader) for _ in range(3)]
    writers = [threading.Thread(target=writer) for _ in range(2)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()
    assert not failures
