"""Cost model tests: classification, block aggregation, ablation knobs."""

from repro.sim.costs import (
    CostModel, DEFAULT_COST_MODEL, block_cost_table, cycles_from_counts,
    instr_issue_cost, instr_memory_cost,
)
from repro.x86.instructions import Imm, Instr, Mem
from repro.x86.nops import NOP_CANDIDATES
from repro.x86.registers import EAX, EBX, ECX


class TestIssueCosts:
    def test_alu_cheap(self):
        assert instr_issue_cost(Instr("add", EAX, EBX)) == \
            DEFAULT_COST_MODEL.alu_issue

    def test_idiv_expensive(self):
        assert instr_issue_cost(Instr("idiv", ECX)) == \
            DEFAULT_COST_MODEL.idiv_issue

    def test_nop_candidates_cost_nop_issue(self):
        for candidate in NOP_CANDIDATES:
            instr = candidate.to_instr()
            expected = (DEFAULT_COST_MODEL.xchg_nop_issue
                        if candidate.locks_bus
                        else DEFAULT_COST_MODEL.nop_issue)
            assert instr_issue_cost(instr) == expected, candidate.name

    def test_xchg_nops_much_more_expensive_than_others(self):
        # The paper's reason for excluding them from the default set.
        assert (DEFAULT_COST_MODEL.xchg_nop_issue
                > 10 * DEFAULT_COST_MODEL.nop_issue)

    def test_conditional_vs_unconditional_branch(self):
        assert instr_issue_cost(Instr("je", None)) == \
            DEFAULT_COST_MODEL.branch_issue
        assert instr_issue_cost(Instr("jmp", None)) == \
            DEFAULT_COST_MODEL.jump_issue


class TestMemoryCosts:
    def test_register_op_has_no_memory_cost(self):
        assert instr_memory_cost(Instr("add", EAX, EBX)) == 0.0

    def test_memory_operand_costs(self):
        assert instr_memory_cost(Instr("mov", EAX, Mem(base=EBX))) == \
            DEFAULT_COST_MODEL.memory_cost

    def test_lea_is_not_a_memory_access(self):
        assert instr_memory_cost(Instr("lea", EAX, Mem(base=EBX))) == 0.0

    def test_nops_never_touch_memory(self):
        for candidate in NOP_CANDIDATES:
            assert instr_memory_cost(candidate.to_instr()) == 0.0

    def test_push_pop_cost_stack_traffic(self):
        assert instr_memory_cost(Instr("push", EAX)) == \
            DEFAULT_COST_MODEL.push_pop_memory

    def test_call_ret_cost_return_address_traffic(self):
        assert instr_memory_cost(Instr("ret")) == \
            DEFAULT_COST_MODEL.push_pop_memory


class _FakeRecord:
    def __init__(self, instr, block_id):
        self.instr = instr
        self.block_id = block_id


class TestBlockModel:
    def test_block_cost_is_max_plus_overlap(self):
        records = [
            _FakeRecord(Instr("add", EAX, EBX), ("f", "b")),
            _FakeRecord(Instr("mov", EAX, Mem(base=EBX)), ("f", "b")),
        ]
        model = DEFAULT_COST_MODEL
        table = block_cost_table(records, model)
        issue, memory = table[("f", "b")]
        assert issue == 2 * model.alu_issue
        assert memory == model.memory_cost
        cycles = cycles_from_counts(records, {("f", "b"): 10}, model)
        expected = 10 * (max(issue, memory)
                         + model.overlap_factor * min(issue, memory))
        assert abs(cycles - expected) < 1e-9

    def test_unexecuted_blocks_cost_nothing(self):
        records = [_FakeRecord(Instr("idiv", ECX), ("f", "cold"))]
        assert cycles_from_counts(records, {}) == 0.0

    def test_nops_in_memory_bound_block_are_nearly_free(self):
        model = DEFAULT_COST_MODEL
        loads = [_FakeRecord(Instr("mov", EAX, Mem(base=EBX)), ("f", "b"))
                 for _ in range(6)]
        base = cycles_from_counts(loads, {("f", "b"): 100}, model)
        nop = NOP_CANDIDATES[0].to_instr()
        with_nops = loads + [_FakeRecord(nop, ("f", "b"))
                             for _ in range(3)]
        diversified = cycles_from_counts(with_nops, {("f", "b"): 100},
                                         model)
        overhead = diversified / base - 1
        assert overhead < 0.05  # hidden behind the memory port

    def test_nops_in_issue_bound_block_cost_fully(self):
        model = DEFAULT_COST_MODEL
        alus = [_FakeRecord(Instr("add", EAX, EBX), ("f", "b"))
                for _ in range(6)]
        base = cycles_from_counts(alus, {("f", "b"): 100}, model)
        nop = NOP_CANDIDATES[0].to_instr()
        with_nops = alus + [_FakeRecord(nop, ("f", "b"))
                            for _ in range(3)]
        diversified = cycles_from_counts(with_nops, {("f", "b"): 100},
                                         model)
        overhead = diversified / base - 1
        expected = 3 * model.nop_issue / (6 * model.alu_issue)
        assert abs(overhead - expected) < 1e-9


class TestOverrides:
    def test_with_overrides_returns_new_model(self):
        model = DEFAULT_COST_MODEL.with_overrides(nop_issue=2.0)
        assert model.nop_issue == 2.0
        assert DEFAULT_COST_MODEL.nop_issue != 2.0
        assert isinstance(model, CostModel)
