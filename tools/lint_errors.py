#!/usr/bin/env python
"""Lint: keep the typed error taxonomy enforced.

Every error raised inside ``src/repro/`` must be a subclass of
:class:`repro.errors.ReproError` (stable ``code``, structured
``context``) — bare ``raise ValueError(...)`` / ``raise
RuntimeError(...)`` lose both and break the fault-injection campaign's
typed-coverage guarantee. This lint forbids raising (or re-raising the
class of) those two builtins anywhere in ``src/repro/`` outside
``errors.py`` itself, where ``ValueError`` legitimately appears in
bases for backward compatibility.

Run by ``make lint`` (and therefore ``make test``). Exits 1 and lists
``file:line`` for each violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

FORBIDDEN = {"ValueError", "RuntimeError"}
ROOT = Path(__file__).resolve().parent.parent
PACKAGE = ROOT / "src" / "repro"
EXEMPT = {PACKAGE / "errors.py"}


def _raised_name(node):
    """The bare name a ``raise`` statement raises, if determinable."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def find_violations(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Raise):
            name = _raised_name(node)
            if name in FORBIDDEN:
                violations.append((node.lineno, name))
    return violations


def main():
    failures = []
    for path in sorted(PACKAGE.rglob("*.py")):
        if path in EXEMPT:
            continue
        for lineno, name in find_violations(path):
            failures.append(
                f"{path.relative_to(ROOT)}:{lineno}: bare raise {name}; "
                f"use a repro.errors type with a stable code")
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"lint: {len(failures)} violation(s)", file=sys.stderr)
        return 1
    print("lint: OK (no bare ValueError/RuntimeError raises in "
          "src/repro/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
