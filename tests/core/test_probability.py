"""Probability model tests, including the paper's §3.1 worked example."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.probability import (
    LinearProfileProbability, LogProfileProbability, UniformProbability,
)

probabilities = st.floats(min_value=0.0, max_value=1.0)
counts = st.integers(min_value=0, max_value=4_000_000_000)


class TestUniform:
    def test_constant(self):
        model = UniformProbability(0.3)
        assert model.probability(0, 100) == 0.3
        assert model.probability(100, 100) == 0.3

    def test_requires_no_profile(self):
        assert not UniformProbability(0.5).requires_profile

    def test_range_validated(self):
        with pytest.raises(ValueError):
            UniformProbability(1.5)


class TestLinear:
    def test_endpoints(self):
        model = LinearProfileProbability(0.10, 0.50)
        assert model.probability(0, 1000) == pytest.approx(0.50)
        assert model.probability(1000, 1000) == pytest.approx(0.10)

    def test_midpoint(self):
        model = LinearProfileProbability(0.0, 1.0)
        assert model.probability(500, 1000) == pytest.approx(0.5)

    def test_polarization_problem(self):
        # §3.1: with a 10^10-scale maximum, a 10^5-scale count lands
        # essentially at p_max — the failure the log model fixes.
        model = LinearProfileProbability(0.10, 0.50)
        p = model.probability(100_000, 10_000_000_000)
        assert p == pytest.approx(0.50, abs=0.001)

    def test_min_not_above_max(self):
        with pytest.raises(ValueError):
            LinearProfileProbability(0.6, 0.5)


class TestLogarithmic:
    def test_endpoints(self):
        model = LogProfileProbability(0.10, 0.50)
        assert model.probability(0, 4_000_000_000) == pytest.approx(0.50)
        assert model.probability(4_000_000_000, 4_000_000_000) == \
            pytest.approx(0.10)

    def test_paper_astar_example(self):
        # §3.1: range [10%, 50%], median count 117,635, max 2 billion —
        # the paper computes pNOP ≈ 30% instead of the linear ≈ 50%.
        model = LogProfileProbability(0.10, 0.50)
        p = model.probability(117_635, 2_000_000_000)
        assert 0.27 <= p <= 0.33
        linear = LinearProfileProbability(0.10, 0.50)
        assert linear.probability(117_635, 2_000_000_000) == \
            pytest.approx(0.50, abs=0.001)

    def test_empty_profile_degrades_to_pmax(self):
        model = LogProfileProbability(0.0, 0.3)
        assert model.probability(0, 0) == 0.3

    def test_count_clamped_to_max(self):
        model = LogProfileProbability(0.1, 0.5)
        assert model.probability(999, 100) == pytest.approx(0.1)


@given(p_min=probabilities, p_max=probabilities, count=counts,
       max_count=counts)
@settings(max_examples=300)
def test_log_model_always_within_range(p_min, p_max, count, max_count):
    if p_min > p_max:
        p_min, p_max = p_max, p_min
    model = LogProfileProbability(p_min, p_max)
    p = model.probability(count, max_count)
    assert p_min - 1e-12 <= p <= p_max + 1e-12


@given(p_min=probabilities, p_max=probabilities,
       count_a=counts, count_b=counts, max_count=counts)
@settings(max_examples=300)
def test_log_model_monotone_decreasing_in_count(p_min, p_max, count_a,
                                                count_b, max_count):
    if p_min > p_max:
        p_min, p_max = p_max, p_min
    model = LogProfileProbability(p_min, p_max)
    low, high = sorted((count_a, count_b))
    assert model.probability(high, max_count) <= \
        model.probability(low, max_count) + 1e-12


@given(count=counts, max_count=st.integers(1, 4_000_000_000))
@settings(max_examples=200)
def test_log_never_exceeds_linear_for_hot_blocks(count, max_count):
    # log(1+x)/log(1+xmax) >= x/xmax on [0, xmax] (concavity), so the log
    # model assigns hot blocks at-most-linear probabilities... i.e. the
    # log model is never *hotter-biased* than the linear one.
    count = min(count, max_count)
    log_model = LogProfileProbability(0.0, 1.0)
    linear_model = LinearProfileProbability(0.0, 1.0)
    assert log_model.probability(count, max_count) <= \
        linear_model.probability(count, max_count) + 1e-9


def test_describe_strings():
    assert UniformProbability(0.5).describe() == "pNOP=50%"
    assert LogProfileProbability(0.0, 0.3).describe() == "pNOP=0%-30%"
    assert "linear" in LinearProfileProbability(0.1, 0.5).describe()
