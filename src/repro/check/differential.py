"""Differential validation of diversified populations.

Three execution engines must agree on every program: the IR reference
interpreter (ground-truth semantics), the baseline binary on the machine
simulator (compiler correctness), and each diversified variant
(diversification correctness — the paper's semantics-preservation
invariant). This module runs all three on shared inputs and compares
their *observables*:

- the output vector (every ``print``),
- the exit code,
- instruction-count sanity bounds — Algorithm 1 inserts at most one NOP
  before each instruction, so a variant executes at most twice the
  baseline's dynamic instructions (plus one sled jump per call under
  basic-block shifting). A count outside ``[baseline, 2·baseline +
  slack]`` betrays a mis-resolved branch or a runaway loop even when the
  output happens to match.

Divergences become structured :class:`DivergenceReport` objects, not
asserts. :func:`validate_population` retries a diverging seed once with
a fresh seed: a deterministic pipeline that diverges again under a
different random stream is a *genuine miscompile* (systematic), while a
single-seed divergence points at that seed's specific layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DivergenceError, ReproError
from repro.pipeline import ProgramBuild, build_population
from repro.sim.batch import PopulationSimulator
from repro.workloads.registry import get_workload

#: Seed offset used for the fresh-seed retry of a diverging variant;
#: far outside any population's seed range.
RETRY_SEED_OFFSET = 1_000_003


def derive_retry_seed(seed):
    """A fresh seed for the divergence retry, derived from ``seed``.

    Integer seeds keep the historical ``seed + RETRY_SEED_OFFSET``
    (stable, debuggable, outside any population's range). Non-integer
    seeds used to collapse to ``0 + RETRY_SEED_OFFSET`` — so a
    population seeded with strings could *retry a divergence with a
    seed from its own population* (any member literally named
    ``1000003``), misclassifying a seed-specific layout bug as a
    genuine systematic miscompile. Deriving from a hash of the seed's
    repr keeps the retry deterministic per seed and distinct from it.
    """
    if isinstance(seed, int):
        retry = seed + RETRY_SEED_OFFSET
    else:
        import hashlib
        digest = hashlib.sha256(repr(seed).encode("utf-8")).digest()
        retry = int.from_bytes(digest[:8], "little") + RETRY_SEED_OFFSET
    assert retry != seed, f"retry seed collided with {seed!r}"
    return retry

#: Extra dynamic instructions allowed beyond the p_max model (covers
#: basic-block-shift sled jumps and rounding).
INSTR_BOUND_SLACK = 4096

#: Workloads the CLI validates by default: one memory-bound, one
#: branch-heavy, one arithmetic-heavy — cheap but representative.
DEFAULT_CHECK_WORKLOADS = ("429.mcf", "462.libquantum", "470.lbm")


@dataclass(frozen=True)
class Observation:
    """The observables of one program execution."""

    output: tuple
    exit_code: int
    instr_count: int | None = None  # None for the reference interpreter

    def first_divergence(self, other):
        """Name and values of the first diverging observable, or None."""
        for index, (mine, theirs) in enumerate(zip(self.output,
                                                   other.output)):
            if mine != theirs:
                return (f"output[{index}]", mine, theirs)
        if len(self.output) != len(other.output):
            return ("len(output)", len(self.output), len(other.output))
        if self.exit_code != other.exit_code:
            return ("exit_code", self.exit_code, other.exit_code)
        return None


@dataclass
class DivergenceReport:
    """One observed divergence (or execution failure) of a variant.

    ``stage`` is where the disagreement surfaced: ``"baseline"`` (binary
    vs. reference interpreter — a compiler bug) or ``"variant"``
    (diversified binary vs. baseline — a diversification bug).
    ``genuine`` is set after the fresh-seed retry: True means the retry
    diverged too (systematic miscompile), False means the divergence is
    specific to ``seed``.
    """

    program: str
    config: str
    seed: object
    stage: str
    kind: str               # "output" | "exit_code" | "instr_bound" | "error"
    observable: str | None = None
    expected: object = None
    actual: object = None
    error: str | None = None
    error_code: str | None = None
    retry_seed: object = None
    genuine: bool | None = None

    def describe(self):
        place = f"{self.program} [{self.config}] seed={self.seed}"
        if self.kind == "error":
            return f"{place}: {self.stage} failed: {self.error}"
        text = (f"{place}: {self.stage} diverged at {self.observable}: "
                f"expected {self.expected!r}, got {self.actual!r}")
        if self.genuine is True:
            text += " (reproduced with fresh seed — genuine miscompile)"
        elif self.genuine is False:
            text += f" (fresh seed {self.retry_seed} agreed — seed-specific)"
        return text


@dataclass
class ValidationResult:
    """Outcome of validating one population."""

    program: str
    config: str
    seeds: tuple
    variants_validated: int = 0
    reports: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.reports

    def summary(self):
        return {
            "program": self.program,
            "config": self.config,
            "variants_validated": self.variants_validated,
            "divergences": len(self.reports),
            "ok": self.ok,
        }


def observe_reference(build, input_values=()):
    """Observables of the IR reference interpreter."""
    result = build.run_reference(input_values)
    return Observation(tuple(result.output), result.exit_code)


def observe_binary(build, binary, input_values=(), max_steps=None,
                   engine=None):
    """Observables of a linked binary on the machine simulator.

    ``engine`` selects the simulator execute path (``"fast"`` or
    ``"reference"``); ``None`` defers to ``REPRO_SIM_ENGINE``. The
    fast-path parity tests run the same binary under both engines and
    require identical observations.
    """
    fuel = {} if max_steps is None else {"max_steps": max_steps}
    if engine is not None:
        fuel["engine"] = engine
    result = build.simulate(binary, input_values, **fuel)
    return Observation(tuple(result.output), result.exit_code,
                       result.instr_count)


def require_equivalent(expected, actual, *, program="program",
                       stage="variant"):
    """Raise :class:`DivergenceError` unless two observations agree.

    This is how the fault campaign turns a *silent wrong answer* (e.g. a
    bit flip landing in an immediate) into a typed error.
    """
    divergence = expected.first_divergence(actual)
    if divergence is not None:
        observable, want, got = divergence
        raise DivergenceError(
            f"{program}: {stage} diverged at {observable}: "
            f"expected {want!r}, got {got!r}",
            context={"program": program, "stage": stage,
                     "observable": observable,
                     "expected": want, "actual": got})


def _instr_bound(baseline_count, config):
    """Upper dynamic-instruction bound for a variant of this config.

    Structural, not statistical: Algorithm 1 inserts at most one NOP per
    instruction (2x dynamic worst case) and basic-block shifting adds at
    most one sled jump per executed call (< baseline instructions).
    """
    bound = 2 * baseline_count
    if config.basic_block_shifting:
        bound += baseline_count
    return bound + INSTR_BOUND_SLACK


def _compare_variant(result, baseline_obs, variant_obs, config, seed):
    """First divergence of a variant run, as an unretried report."""
    divergence = baseline_obs.first_divergence(variant_obs)
    if divergence is not None:
        observable, want, got = divergence
        kind = "exit_code" if observable == "exit_code" else "output"
        return DivergenceReport(
            program=result.program, config=result.config, seed=seed,
            stage="variant", kind=kind, observable=observable,
            expected=want, actual=got)
    low = baseline_obs.instr_count
    high = _instr_bound(baseline_obs.instr_count, config)
    if not low <= variant_obs.instr_count <= high:
        return DivergenceReport(
            program=result.program, config=result.config, seed=seed,
            stage="variant", kind="instr_bound", observable="instr_count",
            expected=f"[{low}, {high}]", actual=variant_obs.instr_count)
    return None


def validate_population(build, config, seeds, *, inputs=(), profile=None,
                        program=None, max_step_factor=8):
    """Differentially validate one population of diversified variants.

    Runs the reference interpreter and the baseline binary first, then
    every variant seed. A diverging variant is retried once with a fresh
    seed (``seed + RETRY_SEED_OFFSET``) before being flagged as a genuine
    miscompile. Variant runs get a step budget derived from the
    baseline's dynamic instruction count, so a mis-resolved branch that
    loops forever surfaces as a bounded, typed error.

    Variant observations come from the lockstep batch engine
    (:class:`repro.sim.batch.PopulationSimulator`): a variant with a
    proven NOP-transparency record is derived from the one shared
    baseline run instead of simulated; an unprovable variant (a §6
    config, a miscompile) is simulated individually and the fallback
    reason recorded on ``build.warnings``. ``REPRO_SIM_BATCH=off``
    restores one full simulation per variant.
    """
    seeds = tuple(seeds)
    name = program or build.name
    result = ValidationResult(program=name, config=config.describe(),
                              seeds=seeds)

    reference_obs = observe_reference(build, inputs)
    baseline = build.link_baseline()
    population_sim = PopulationSimulator(baseline, inputs)
    baseline_run = population_sim.baseline_result()
    baseline_obs = Observation(tuple(baseline_run.output),
                               baseline_run.exit_code,
                               baseline_run.instr_count)
    divergence = reference_obs.first_divergence(baseline_obs)
    if divergence is not None:
        observable, want, got = divergence
        result.reports.append(DivergenceReport(
            program=name, config=result.config, seed=None,
            stage="baseline",
            kind="exit_code" if observable == "exit_code" else "output",
            observable=observable, expected=want, actual=got))
        return result  # variants would all "diverge" for the same reason

    fuel = max(baseline_obs.instr_count * max_step_factor, 100_000)

    # Prebuild the whole population at once so the shared link plan,
    # process-pool and artifact-cache fast paths apply — the variants
    # validated here come off the same incremental-linking path the
    # benchmarks and security studies use. A batch failure falls through
    # to the per-seed builds below, which preserve per-seed error
    # reports.
    prebuilt = {}
    try:
        binaries = build_population(build, config, seeds, profile)
        prebuilt = dict(zip(seeds, binaries))
    except ReproError:
        pass

    def run_variant(seed):
        variant = prebuilt.get(seed)
        if variant is None:
            variant = build.link_variant(config, seed, profile)
        run = population_sim.result_for(variant, max_steps=fuel)
        variant_obs = Observation(tuple(run.output), run.exit_code,
                                  run.instr_count)
        return _compare_variant(result, baseline_obs, variant_obs,
                                config, seed)

    for seed in seeds:
        try:
            report = run_variant(seed)
        except ReproError as exc:
            report = DivergenceReport(
                program=name, config=result.config, seed=seed,
                stage="variant", kind="error", error=str(exc),
                error_code=getattr(exc, "code", None))
        if report is None:
            result.variants_validated += 1
            continue
        # Fresh-seed retry: does the divergence reproduce under a
        # different random stream?
        retry_seed = derive_retry_seed(seed)
        report.retry_seed = retry_seed
        try:
            retry_report = run_variant(retry_seed)
        except ReproError:
            retry_report = "error"
        report.genuine = retry_report is not None
        result.reports.append(report)
    for warning in population_sim.warnings:
        build._warn(f"{name}: {warning}")
    return result


def validate_workload(name, config, n_variants=10, *, base_seed=0,
                      use_ref_input=True):
    """Validate a population of one registered workload."""
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    profile = None
    if config.requires_profile:
        profile = build.profile(workload.train_input)
    inputs = workload.ref_input if use_ref_input else workload.train_input
    return validate_population(
        build, config, range(base_seed, base_seed + n_variants),
        inputs=inputs, profile=profile, program=workload.name)


def validate_workloads(names, config, n_variants=10, **kwargs):
    """Validate several workloads; returns ``{name: ValidationResult}``."""
    return {name: validate_workload(name, config, n_variants, **kwargs)
            for name in names}
