"""ΔBreakpad-style frame resolution over a proven address map.

The serving daemon's crash-report companion: given the
:class:`~repro.analysis.transparency.AddressMap` a stream proof
produced — or, for §6 transform configs, the generalized
:class:`~repro.analysis.equivalence.EquivalenceMap` an equivalence
proof produced — resolve each variant code address to its baseline
meaning: the carried baseline instruction (``exact``, or
``substituted`` when its encoding was dual-ModRM flipped), the baseline
instruction an inserted NOP precedes (``inserted_nop``), the baseline
function entry a bb-shift sled fronts (``sled_jump`` / ``sled_nop``),
or a typed refusal (``unmapped`` for mid-instruction / out-of-text
addresses). Baseline attribution is enriched with the owning function
from ``function_ranges``, so a diversified stack trace reads like a
baseline one. Everything here is a lookup into proof byproducts;
nothing is heuristic.
"""

from __future__ import annotations


def _function_at(baseline, address):
    """Name of the baseline function owning ``address``, or ``None``."""
    for name, (start, end) in baseline.function_ranges.items():
        if start <= address < end:
            return name
    return None


def resolve_frames(amap, baseline, addresses):
    """Resolve a list of variant addresses into frame dicts.

    Each frame carries ``status`` (``exact`` / ``substituted`` /
    ``inserted_nop`` / ``sled_jump`` / ``sled_nop`` / ``unmapped``),
    the variant address, and — when resolvable — the
    baseline address, mnemonic, owning function, and the source block id
    (stringified: block ids are backend-internal tuples). An inserted
    NOP resolves to the baseline instruction it was placed in front of,
    which is the frame a baseline-side debugger would show.
    """
    frames = []
    for address in addresses:
        entry = amap.to_baseline(address)
        frame = {
            "status": entry["status"],
            "variant_address": entry["variant_address"],
        }
        if entry["status"] != "unmapped":
            baseline_address = entry["baseline_address"]
            frame["baseline_address"] = baseline_address
            frame["mnemonic"] = entry["mnemonic"]
            frame["block_id"] = (None if entry["block_id"] is None
                                 else str(entry["block_id"]))
            frame["function"] = (None if baseline_address is None
                                 else _function_at(baseline,
                                                   baseline_address))
        frames.append(frame)
    return frames
