"""A1 — ablation: enabling the XCHG-based NOP candidates.

The paper excludes the two XCHG candidates from the default set because
XCHG locks the memory bus on real x86 implementations. This ablation
quantifies the choice: with XCHG candidates enabled (7-entry NOP table),
overhead rises sharply even at the same insertion probability, while the
security effect (survivor counts) barely moves.
"""

from benchmarks._harness import (
    baseline_binary, baseline_signatures, ref_counts,
)
from repro.core.config import DiversificationConfig
from repro.reporting import format_table, geometric_mean_overhead
from repro.security.survivor import gadget_signatures

_SUBSET = ("400.perlbench", "433.milc", "456.hmmer", "470.lbm",
           "482.sphinx3")
_SEEDS = 3


def run_ablation():
    from benchmarks._harness import build_for

    with_xchg = DiversificationConfig.uniform(0.5,
                                              include_xchg_nops=True)
    without = DiversificationConfig.uniform(0.5)
    rows = []
    for name in _SUBSET:
        build = build_for(name)
        counts = ref_counts(name)
        base_cycles = build.cycles(baseline_binary(name), counts)
        original = baseline_signatures(name)

        def stats(config):
            overheads = []
            survivors = []
            for seed in range(_SEEDS):
                variant = build.link_variant(config, seed)
                overheads.append(
                    build.cycles(variant, counts) / base_cycles - 1)
                signatures = gadget_signatures(variant.text)
                survivors.append(sum(
                    1 for offset, signature in signatures.items()
                    if original.get(offset) == signature))
            return (sum(overheads) / len(overheads),
                    sum(survivors) / len(survivors))

        plain_overhead, plain_survivors = stats(without)
        xchg_overhead, xchg_survivors = stats(with_xchg)
        rows.append((name, 100 * plain_overhead, 100 * xchg_overhead,
                     plain_survivors, xchg_survivors))
    return rows


def test_ablation_xchg_nops(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    print(format_table(
        ("Benchmark", "overhead% (5 NOPs)", "overhead% (7 NOPs+XCHG)",
         "survivors (5)", "survivors (7)"),
        rows,
        title="Ablation: XCHG-based NOP candidates at pNOP=50% "
              f"(mean of {_SEEDS} variants)"))

    plain = geometric_mean_overhead([row[1] / 100 for row in rows])
    xchg = geometric_mean_overhead([row[2] / 100 for row in rows])
    # The paper's rationale: bus-locking candidates are dramatically
    # more expensive...
    assert xchg > 2 * plain
    # ...while the diversity benefit is marginal: survivor counts stay
    # in the same ballpark.
    for _name, _po, _xo, plain_survivors, xchg_survivors in rows:
        assert xchg_survivors <= plain_survivors * 1.5 + 5
