"""Span tracing: nesting, ring buffer, JSONL export, full-run schema.

Recording is opt-in via ``REPRO_TRACE``; with the knob unset a span
still feeds the ``stage.*`` histogram (that is the always-on timing
path) but records nothing.
"""

import json

import pytest

from repro.obs import metrics
from repro.obs.trace import span
from repro.obs import trace

#: Every exported event must carry exactly these keys (plus optional
#: "counters" and "error").
REQUIRED_KEYS = {"event", "name", "span_id", "parent_id", "pid",
                 "start", "seconds", "attrs"}
OPTIONAL_KEYS = {"counters", "error"}


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    trace.reset()
    metrics.reset()
    yield
    trace.reset()
    metrics.reset()


def _check_event(event):
    assert REQUIRED_KEYS <= set(event)
    assert set(event) <= REQUIRED_KEYS | OPTIONAL_KEYS
    assert event["event"] == "span"
    assert isinstance(event["name"], str) and event["name"]
    assert isinstance(event["span_id"], int)
    assert event["parent_id"] is None or \
        isinstance(event["parent_id"], int)
    assert isinstance(event["pid"], int)
    assert isinstance(event["seconds"], (int, float))
    assert event["seconds"] >= 0
    assert isinstance(event["attrs"], dict)


class TestDisabled:
    def test_records_nothing_but_times_the_stage(self):
        with span("unit_test_stage", seed=3) as timing:
            pass
        assert timing.seconds is not None
        assert trace.events() == []
        hist = metrics.histograms()["stage.unit_test_stage"]
        assert hist["count"] == 1

    def test_annotate_and_count_are_noops(self):
        with span("unit_test_stage") as timing:
            timing.annotate(extra=1).count("items", 5)
        assert timing.counters is None


class TestRecording:
    @pytest.fixture(autouse=True)
    def _enable(self, monkeypatch, tmp_path):
        self.path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(self.path))

    def test_nested_spans_record_parentage(self):
        with span("outer", kind="test") as outer:
            with span("inner") as inner:
                pass
        events = trace.events()
        assert [e["name"] for e in events] == ["inner", "outer"]
        by_name = {e["name"]: e for e in events}
        assert by_name["inner"]["parent_id"] == outer.span_id
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["attrs"] == {"kind": "test"}
        assert inner.span_id != outer.span_id
        for event in events:
            _check_event(event)

    def test_jsonl_sink_mirrors_the_ring(self):
        with span("a"):
            pass
        with span("b", n=2):
            pass
        lines = self.path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        for event in parsed:
            _check_event(event)
        assert [e["name"] for e in parsed] == ["a", "b"]

    def test_error_spans_are_flagged(self):
        with pytest.raises(KeyError):
            with span("doomed"):
                raise KeyError("x")
        (event,) = trace.events()
        assert event["error"] == "KeyError"

    def test_annotate_and_count(self):
        with span("stage") as timing:
            timing.annotate(seed=9)
            timing.count("items", 2)
            timing.count("items")
        (event,) = trace.events()
        assert event["attrs"] == {"seed": 9}
        assert event["counters"] == {"items": 3}

    def test_ring_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_RING", "4")
        for index in range(10):
            with span("loop", i=index):
                pass
        events = trace.events()
        assert len(events) == 4
        assert [e["attrs"]["i"] for e in events] == [6, 7, 8, 9]

    def test_unwritable_sink_does_not_fail_the_span(self, monkeypatch,
                                                    tmp_path):
        monkeypatch.setenv("REPRO_TRACE",
                           str(tmp_path / "no" / "such" / "dir" / "t.jsonl"))
        with span("resilient") as timing:
            pass
        assert timing.seconds is not None
        assert trace.events()  # ring still records


class TestFullRunSchema:
    """A full ``check --quick`` run exports a schema-valid trace."""

    def test_check_quick_trace(self, monkeypatch, tmp_path):
        from repro.cli import main
        path = tmp_path / "check.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        assert main(["check", "--quick"]) == 0
        lines = path.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        for event in events:
            _check_event(event)
        names = {event["name"] for event in events}
        # The acceptance stages all appear in one quick run.
        assert {"compile", "link", "nop_insert", "verify",
                "simulate"} <= names
        # Span ids are unique per pid and parents reference real spans.
        for pid in {event["pid"] for event in events}:
            mine = [e for e in events if e["pid"] == pid]
            ids = [e["span_id"] for e in mine]
            assert len(ids) == len(set(ids))
            known = set(ids)
            for event in mine:
                assert event["parent_id"] is None or \
                    event["parent_id"] in known
