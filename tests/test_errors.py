"""Error-hierarchy tests: everything raised is a ReproError subclass."""

import pytest

from repro import errors


def test_hierarchy():
    for name in ("MincSyntaxError", "MincSemanticError", "IRError",
                 "LoweringError", "EncodingError", "DecodingError",
                 "LinkError", "SimulatorError", "ProfileError",
                 "WorkloadError", "IRValidationError", "OperandError",
                 "MachineFault", "SimulationLimitExceeded", "ConfigError",
                 "DivergenceError"):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_validation_errors_remain_value_errors():
    # Pre-existing callers catch ValueError for bad operands/configs;
    # the typed classes must keep satisfying those handlers.
    for name in ("IRValidationError", "OperandError", "ConfigError"):
        assert issubclass(getattr(errors, name), ValueError)


def test_every_error_class_has_a_stable_code():
    seen = {}
    for name in dir(errors):
        cls = getattr(errors, name)
        if isinstance(cls, type) and issubclass(cls, errors.ReproError):
            assert isinstance(cls.code, str) and "." in cls.code or \
                cls is errors.ReproError, name
            seen.setdefault(cls.code, name)
    assert seen["check.divergence"] == "DivergenceError"


def test_context_defaults_to_empty_dict():
    error = errors.ReproError("boom")
    assert error.context == {}
    assert error.code == "repro.error"


def test_context_and_code_override():
    error = errors.SimulatorError("boom", context={"eip": 4096},
                                  code="sim.custom")
    assert error.context["eip"] == 4096
    assert error.code == "sim.custom"


def test_with_context_chains():
    error = errors.ProfileError("bad").with_context(kind="block", count=-1)
    assert error.context == {"kind": "block", "count": -1}
    assert error.with_context(key="main") is error
    assert error.context["key"] == "main"


def test_syntax_error_location_formatting():
    error = errors.MincSyntaxError("bad token", line=3, column=7)
    assert "line 3" in str(error)
    assert "column 7" in str(error)
    assert error.line == 3


def test_syntax_error_without_location():
    error = errors.MincSyntaxError("bad token")
    assert str(error) == "bad token"


def test_callers_can_catch_the_base_class():
    from repro.minc import compile_to_ir
    with pytest.raises(errors.ReproError):
        compile_to_ir("int main( {")
    with pytest.raises(errors.ReproError):
        compile_to_ir("int main() { return nope; }")
