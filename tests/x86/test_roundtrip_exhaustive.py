"""Exhaustive encoder <-> decoder agreement.

Enumerates every instruction form the encoder can emit — all mnemonics,
all operand kinds, every ``encode_rm`` addressing-mode path, both ModRM
directions — and asserts each one round-trips: ``decode(encode(i))``
equals ``i``, reports the right size, and re-encoding the decoded
instruction (trying the alternate ModRM direction where it exists)
reproduces the exact original bytes. This is the standalone version of
the verifier's ``roundtrip`` pass, run over the full form space instead
of whatever a particular binary happens to contain.

Immediates use the decoder's canonical ranges: signed for s8/s32 fields
(ALU, mov, push, imul, branches), unsigned for the u8/u16 fields
(shift counts, ``int``, ``ret imm16``).
"""

import pytest

from repro.x86.decoder import decode
from repro.x86.encoder import _ALU_OPS, _SHIFT_OPS, encode
from repro.x86.instructions import (
    Imm, Instr, JCC_MNEMONICS, Mem, Rel, SETCC_MNEMONICS,
)
from repro.x86.registers import EBP, ECX, ESP, register_by_code

REGS = tuple(register_by_code(code) for code in range(8))
INDEXABLE = tuple(r for r in REGS if r is not ESP)

#: Signed immediates spanning both the imm8 and imm32 encoder paths.
SIGNED_IMMS = (0, 1, -1, 127, -128, 128, -129,
               0x1234_5678, -0x1234_5678)

#: A displacement set hitting disp0, disp8 (both signs, both bounds)
#: and disp32 (both signs).
DISPS = (0, 5, -8, 127, -128, 128, -129, 0x4000, -0x4000)


def all_mems():
    """Every ``encode_rm`` addressing-mode path, at every disp width."""
    mems = [Mem(disp=disp) for disp in DISPS]          # absolute
    for base in REGS:                                  # [base + disp]
        mems.extend(Mem(base=base, disp=disp) for disp in DISPS)
    for base in (None,) + REGS:                        # SIB forms
        for index in INDEXABLE:
            for scale in (1, 2, 4, 8):
                for disp in (0, 4, -128, 0x4000):
                    mems.append(Mem(base=base, index=index,
                                    scale=scale, disp=disp))
    return mems


#: A small subset still covering each distinct encode_rm byte shape:
#: absolute, plain base (disp0/disp8/disp32), the EBP-forces-disp8 and
#: ESP-forces-SIB specials, SIB with and without base, SIB+EBP base.
MEM_SAMPLE = (
    Mem(disp=0x804c000),
    Mem(base=REGS[3], disp=0),
    Mem(base=REGS[3], disp=8),
    Mem(base=REGS[3], disp=0x400),
    Mem(base=EBP, disp=0),
    Mem(base=EBP, disp=-12),
    Mem(base=ESP, disp=0),
    Mem(base=ESP, disp=4),
    Mem(base=ESP, disp=0x200),
    Mem(base=REGS[0], index=REGS[6], scale=4, disp=0),
    Mem(base=EBP, index=REGS[1], scale=2, disp=0),
    Mem(index=REGS[7], scale=8, disp=0x100),
)

RM_SAMPLE = REGS + MEM_SAMPLE


def roundtrip(instr):
    blob = encode(instr)
    decoded = decode(blob)
    assert decoded == instr, (instr, decoded, blob.hex())
    assert decoded.size == len(blob)
    produced = encode(Instr(decoded.mnemonic, *decoded.operands))
    if produced != blob:
        produced = encode(Instr(decoded.mnemonic, *decoded.operands,
                                alternate_encoding=True))
    assert produced == blob, (instr, blob.hex(), produced.hex())


def test_mem_addressing_modes_exhaustive():
    """The full encode_rm space through its two directional carriers."""
    for mem in all_mems():
        for reg in REGS[:2]:
            roundtrip(Instr("mov", reg, mem))
            roundtrip(Instr("mov", mem, reg))
            roundtrip(Instr("lea", reg, mem))


@pytest.mark.parametrize("mnemonic", sorted(_ALU_OPS))
def test_alu_forms(mnemonic):
    for dst in RM_SAMPLE:
        for value in SIGNED_IMMS:
            roundtrip(Instr(mnemonic, dst, Imm(value)))
        for src in REGS:
            roundtrip(Instr(mnemonic, dst, src))
    for dst in REGS:
        for src in MEM_SAMPLE:
            roundtrip(Instr(mnemonic, dst, src))
        for src in REGS:
            roundtrip(Instr(mnemonic, dst, src, alternate_encoding=True))


@pytest.mark.parametrize("mnemonic", sorted(_SHIFT_OPS))
def test_shift_forms(mnemonic):
    for dst in RM_SAMPLE:
        for count in (0, 1, 2, 5, 31, 255):
            roundtrip(Instr(mnemonic, dst, Imm(count)))
        roundtrip(Instr(mnemonic, dst, ECX))


def test_mov_forms():
    for dst in REGS:
        for src in REGS:
            roundtrip(Instr("mov", dst, src))
            roundtrip(Instr("mov", dst, src, alternate_encoding=True))
        for value in SIGNED_IMMS:
            roundtrip(Instr("mov", dst, Imm(value)))
    for mem in MEM_SAMPLE:
        for value in SIGNED_IMMS:
            roundtrip(Instr("mov", mem, Imm(value)))


def test_test_and_xchg_forms():
    for dst in RM_SAMPLE:
        for src in REGS:
            roundtrip(Instr("test", dst, src))
            roundtrip(Instr("xchg", dst, src))
        for value in SIGNED_IMMS:
            roundtrip(Instr("test", dst, Imm(value)))


def test_stack_forms():
    for reg in REGS:
        roundtrip(Instr("push", reg))
        roundtrip(Instr("pop", reg))
    for mem in MEM_SAMPLE:
        roundtrip(Instr("push", mem))
        roundtrip(Instr("pop", mem))
    for value in SIGNED_IMMS:
        roundtrip(Instr("push", Imm(value)))


def test_unary_group_forms():
    for mnemonic in ("inc", "dec", "neg", "not", "mul", "idiv",
                     "call_reg", "jmp_reg"):
        for operand in RM_SAMPLE:
            roundtrip(Instr(mnemonic, operand))


def test_imul_forms():
    for dst in REGS:
        for src in RM_SAMPLE:
            roundtrip(Instr("imul", dst, src))
            for value in SIGNED_IMMS:
                roundtrip(Instr("imul", dst, src, Imm(value)))


def test_setcc_forms():
    for mnemonic in sorted(SETCC_MNEMONICS):
        for reg in REGS[:4]:  # only AL..BL have byte forms
            roundtrip(Instr(mnemonic, reg))
        for mem in MEM_SAMPLE:
            roundtrip(Instr(mnemonic, mem))


def test_branch_forms():
    rel8s = (0, 1, -1, 127, -128)
    rel32s = (0, 128, -129, 0x12345, -0x12345)
    for value in rel32s:
        roundtrip(Instr("call", Rel(value, 32)))
        roundtrip(Instr("jmp", Rel(value, 32)))
    for value in rel8s:
        roundtrip(Instr("jmp", Rel(value, 8)))
    for mnemonic in sorted(JCC_MNEMONICS):
        for value in rel8s:
            roundtrip(Instr(mnemonic, Rel(value, 8)))
        for value in rel32s:
            roundtrip(Instr(mnemonic, Rel(value, 32)))


def test_nullary_and_misc_forms():
    roundtrip(Instr("nop"))
    roundtrip(Instr("hlt"))
    roundtrip(Instr("cdq"))
    roundtrip(Instr("ret"))
    for value in (0, 4, 8, 0xFFFC):
        roundtrip(Instr("ret", Imm(value)))
    for value in (0, 3, 0x80, 0xFF):
        roundtrip(Instr("int", Imm(value)))
