"""End-to-end driver: source → profile → diversified binaries.

:class:`ProgramBuild` wraps one MinC program through the whole pipeline
and caches the expensive stages:

1. front end + optimizer (deterministic, so training and final builds see
   identical CFGs),
2. lowering to the LR object unit,
3. profile collection on a training input,
4. per-variant NOP insertion + linking,
5. execution (reference interpreter or machine simulator) and analytic
   cycle estimation.

This is the module examples and benchmarks program against.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.backend.linker import link
from repro.backend.lowering import lower_module
from repro.core.variants import diversify_unit
from repro.minc.irgen import compile_to_ir
from repro.opt.pipeline import optimize_module
from repro.profiling.collect import collect_profile, collect_profile_multi
from repro.runtime.lib import runtime_unit
from repro.sim.analytic import block_counts_from_profile, estimate_cycles
from repro.sim.costs import DEFAULT_COST_MODEL
from repro.sim.machine import run_binary


def build_ir(source, name="program", opt_level=2):
    """Front end + optimizer; deterministic for a given source."""
    module = compile_to_ir(source, name)
    return optimize_module(module, level=opt_level)


class ProgramBuild:
    """One program moving through the compile/profile/diversify pipeline."""

    def __init__(self, source, name="program", opt_level=2):
        self.source = source
        self.name = name
        self.opt_level = opt_level
        self.module = build_ir(source, name, opt_level)
        self.unit = lower_module(self.module, name)
        self._profiles = {}
        #: Non-fatal degradations recorded during builds (e.g. a
        #: profile-guided config falling back to uniform insertion).
        self.warnings = []

    def _warn(self, message):
        self.warnings.append(message)

    # -- profiling -------------------------------------------------------------

    def profile(self, input_values=(), key=None):
        """Collect (and cache) a profile for one training input."""
        cache_key = key if key is not None else tuple(input_values)
        if cache_key not in self._profiles:
            profile, _result = collect_profile(self.module, input_values)
            self._profiles[cache_key] = profile
        return self._profiles[cache_key]

    def profile_multi(self, input_sets, key):
        """Collect (and cache) a profile over several training inputs."""
        if key not in self._profiles:
            profile, _result = collect_profile_multi(self.module, input_sets)
            self._profiles[key] = profile
        return self._profiles[key]

    # -- linking ------------------------------------------------------------------

    def link_baseline(self):
        """The undiversified binary (runtime objects first, as ld would)."""
        return link([runtime_unit(), self.unit])

    def link_variant(self, config, seed, profile=None, *, fallback=False):
        """One diversified binary for (config, seed, profile).

        A profile-guided config without a profile normally raises
        :class:`~repro.errors.ProfileError`. With ``fallback=True`` the
        build degrades to the config's uniform-``p_max`` equivalent and a
        warning is recorded on :attr:`warnings` instead — the graceful
        path used when profile collection failed upstream.
        """
        if fallback and config.requires_profile and profile is None:
            self._warn(f"{self.name}: no profile for "
                       f"{config.describe()!r}; falling back to "
                       f"{config.uniform_fallback().describe()!r}")
            config = config.uniform_fallback()
        variant = diversify_unit(self.unit, config, seed, profile)
        return link([runtime_unit(), variant])

    def link_population(self, config, seeds, profile=None, *, fallback=False):
        """A population of diversified binaries (the paper uses 25)."""
        return [self.link_variant(config, seed, profile, fallback=fallback)
                for seed in seeds]

    # -- execution -------------------------------------------------------------------

    def run_reference(self, input_values=()):
        """Execute the IR on the reference interpreter."""
        from repro.ir.interp import run_module
        return run_module(self.module, input_values)

    def simulate(self, binary, input_values=(), count_addresses=False,
                 **fuel):
        """Execute a linked binary on the machine simulator.

        Extra keyword arguments (``max_steps``, ``stack_size``) are the
        run's fuel, forwarded to :func:`~repro.sim.machine.run_binary`.
        """
        return run_binary(binary, input_values,
                          count_addresses=count_addresses, **fuel)

    # -- performance ------------------------------------------------------------------

    def execution_counts(self, input_values=(), key=None):
        """block_id → count map for the cost engine, for one input."""
        profile = self.profile(input_values, key=key)
        return block_counts_from_profile(self.module, profile)

    def cycles(self, binary, counts, model=DEFAULT_COST_MODEL):
        """Analytic cycle count of a binary under given counts."""
        return estimate_cycles(binary, counts, model)

    def overhead(self, config, seed, *, train_input=(), ref_input=(),
                 model=DEFAULT_COST_MODEL, profile=None):
        """Fractional slowdown of one variant versus the baseline.

        ``train_input`` feeds the profile used by profile-guided configs;
        ``ref_input`` is the measured workload (the paper's train/ref
        split). If profile collection fails, the build degrades to the
        config's uniform-``p_max`` fallback and records a warning rather
        than aborting the measurement.
        """
        if profile is None and config.requires_profile:
            try:
                profile = self.profile(train_input)
            except ReproError as exc:
                self._warn(f"{self.name}: profile collection failed "
                           f"({exc}); falling back to "
                           f"{config.uniform_fallback().describe()!r}")
                config = config.uniform_fallback()
        counts = self.execution_counts(ref_input)
        baseline = self.cycles(self.link_baseline(), counts, model)
        variant = self.cycles(self.link_variant(config, seed, profile),
                              counts, model)
        return variant / baseline - 1.0


def compile_and_link(source, name="program", opt_level=2):
    """One-call convenience: source text → undiversified LinkedBinary."""
    return ProgramBuild(source, name, opt_level).link_baseline()
