"""Machine-checked semantics-preservation proofs for the §6 transforms.

:class:`~repro.analysis.transparency.TransparencyProver` proves the
paper's core property — a variant is "baseline + Table-1 NOPs +
recomputed offsets" — but the §6 extensions are *not* that: equivalent-
encoding substitution rewrites bytes, basic-block shifting splices in a
jumped-over sled and a new label, and function reordering permutes the
whole layout. :class:`EquivalenceProver` closes that gap. Given a
baseline and a variant built under **any** config (NOP insertion
composed with any subset of the §6 transforms), it produces either

- a machine-checked proof of semantic equivalence, plus a generalized
  address map (:class:`EquivalenceMap`) and a per-record count-
  derivation plan the lockstep batch engine consumes, or
- a typed :class:`~repro.analysis.cfg.Finding` naming the first
  unprovable site — never a guess.

Three proof dimensions compose with the NOP alignment the transparency
prover established:

**Substitution** (``verify.equivalence.subst``). A carried instruction
whose bytes changed must be provably the *same operation*: both byte
chunks are independently re-decoded with the real decoder and their
operands must agree modulo the data-segment shift (the simulator
executes through this same decoder, so decode-equality implies
semantic equality); then the variant bytes must be one of the two
dual-ModRM encodings of the shifted baseline instruction, re-derived
through the encoder — the same algebra the substitution pass used, but
recomputed here from the baseline side rather than trusted.

**Basic-block shifting** (``verify.equivalence.sled``). A function may
open with one unconditional ``jmp`` over a run of Table-1 NOP bytes.
The sled is accepted only with a dead-code proof: the jump targets
exactly the sled's end inside the same function, every interior byte
is a Table-1 NOP encoding, and *nothing* can enter the interior — no
branch in the whole variant targets it, no code symbol other than the
sled's own skip label lands in it, and the entry point is outside.
Execution therefore always hops the sled, so "jmp + dead bytes" is
equivalent to "nothing" (one eip move), and the serving layer no
longer needs to tolerate ``verify.unreachable`` findings blindly.

**Function reordering** (``verify.equivalence.layout`` /
``verify.equivalence.branch`` / ``verify.equivalence.symbol``).
Layouts are matched per function by symbol identity: both binaries'
``function_ranges`` must name the same functions and tile their texts;
when the order differs, every function must end in an instruction that
cannot fall through (else adjacency was semantic and permuting it is
unprovable). Every cross-function displacement is then validated
label-by-label: a branch is correct iff its variant target is where
one of the labels at its baseline target moved to, and every code
symbol's new address is pinned by the record pairing (with the sled
jump accepted as a function label's image, since entering at the jump
and entering past the sled are the same state transition).

The prover never trusts linker metadata it has not validated: both
binaries' instruction records are checked against their images byte
for byte and must tile their texts exactly (the same pinning argument
records-mode transparency uses), so every claim below is a claim about
the shipped bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import Finding
from repro.analysis.transparency import (
    _check_data_segments, _coverage_finding, _label_index,
    _operands_match, _record_image_finding, _slice_of,
)
from repro.errors import DecodingError, EncodingError, EquivalenceError
from repro.obs import metrics
from repro.obs.trace import span
from repro.x86.decoder import decode
from repro.x86.encoder import encode
from repro.x86.instructions import Instr, Mem
from repro.x86.nops import match_nop_candidate

#: Mnemonics that cannot fall through to the next address; a function
#: ending in one of these may be moved freely by reordering.
_NO_FALLTHROUGH = frozenset({"ret", "jmp", "hlt", "jmp_reg"})

#: Count-plan entry kinds (see :attr:`EquivalenceReport.count_plan`).
PLAN_CARRIED = "carried"
PLAN_NOP = "nop"
PLAN_SLED_JMP = "sled_jmp"
PLAN_SLED_NOP = "sled_nop"


@dataclass
class EquivalenceReport:
    """Findings, statistics and proof byproducts for one variant.

    On a clean proof, :attr:`map` is the generalized
    :class:`EquivalenceMap` and :attr:`count_plan` is a list with one
    entry per variant instruction record, in record order:

    - ``(PLAN_CARRIED, b_index)`` — executes exactly as often as
      baseline record ``b_index``;
    - ``(PLAN_NOP, b_index)`` — an inserted NOP riding immediately
      before carried record ``b_index`` (same count);
    - ``(PLAN_SLED_JMP, b_index, subtract)`` — a sled skip jump; its
      count is baseline record ``b_index``'s count minus the counts of
      the baseline records in ``subtract`` (direct branches proven to
      enter the function past the sled), or underivable when
      ``subtract`` is ``None``;
    - ``(PLAN_SLED_NOP,)`` — proven-dead sled interior; count zero.

    Both stay ``None`` when the proof failed.
    """

    baseline_name: str
    variant_name: str
    findings: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    map: object = None
    count_plan: list = None
    #: Absolute ``(start, end)`` spans of proven-dead sled interiors;
    #: only these bytes may be excused from ``verify.unreachable``.
    sled_spans: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.findings

    def describe(self):
        status = ("equivalent"
                  if self.ok else f"{len(self.findings)} finding(s)")
        return (f"{self.variant_name} vs {self.baseline_name}: {status}, "
                f"{self.stats.get('substituted', 0)} substitution(s), "
                f"{self.stats.get('sled_functions', 0)} sled(s), "
                f"{self.stats.get('inserted_nops', 0)} inserted NOP(s)")


@dataclass
class EquivalenceMap:
    """Generalized variant ↔ baseline address correspondence.

    The §6 superset of :class:`~repro.analysis.transparency.AddressMap`,
    with the same ΔBreakpad interface (``to_baseline`` /
    ``to_variant``), so :func:`repro.serve.symbolicate.resolve_frames`
    consumes either. ``v2b`` maps a variant text offset at an
    instruction boundary to ``(baseline_record_index, status)`` where
    status is one of ``"exact"``, ``"substituted"``, ``"inserted_nop"``,
    ``"sled_jump"`` or ``"sled_nop"``; sled entries attribute to the
    function's first carried baseline instruction (the frame a
    baseline-side debugger would show for the function entry). ``b2v``
    maps every baseline instruction offset to the offset of its carried
    (possibly re-encoded) partner in the variant.
    """

    baseline: object
    variant_text_base: int
    variant_text_size: int
    v2b: dict
    b2v: dict

    def to_baseline(self, variant_address):
        """Resolve one variant code address to its baseline meaning."""
        offset = variant_address - self.variant_text_base
        entry = self.v2b.get(offset)
        if entry is None:
            return {"status": "unmapped", "variant_address": variant_address}
        index, status = entry
        if index is None:
            return {"status": status, "variant_address": variant_address,
                    "baseline_address": None, "mnemonic": None,
                    "block_id": None}
        record = self.baseline.instr_records[index]
        return {"status": status, "variant_address": variant_address,
                "baseline_address": record.address,
                "mnemonic": record.mnemonic, "block_id": record.block_id}

    def to_variant(self, baseline_address):
        """Where ``baseline_address`` (an instruction boundary) moved to
        in the variant, or ``None`` if it is not a boundary."""
        offset = self.b2v.get(baseline_address - self.baseline.text_base)
        if offset is None:
            return None
        return self.variant_text_base + offset


def _function_order(binary):
    """Function names sorted by their range start (the layout order)."""
    return [name for name, (start, _end) in
            sorted(binary.function_ranges.items(), key=lambda kv: kv[1])]


def _ranges_tile(binary, findings, label):
    """Function ranges must partition the text contiguously."""
    position = binary.text_base
    for name, (start, end) in sorted(binary.function_ranges.items(),
                                     key=lambda kv: kv[1]):
        if start != position or end < start:
            findings.append(Finding(
                "verify.equivalence.layout",
                f"{label} function ranges do not tile the text: "
                f"{name!r} starts at {start:#x}, expected {position:#x}",
                address=start, function=name))
            return False
        position = end
    if position != binary.text_end:
        findings.append(Finding(
            "verify.equivalence.layout",
            f"{label} function ranges end at {position:#x}, text ends "
            f"at {binary.text_end:#x}", address=position))
        return False
    return True


def _records_by_function(binary):
    """``{name: [records]}`` in address order; assumes ranges tile."""
    ordered = sorted(binary.function_ranges.items(), key=lambda kv: kv[1])
    grouped = {name: [] for name, _range in ordered}
    names = iter(ordered)
    name, (start, end) = next(names)
    for record in binary.instr_records:
        while record.address >= end:
            name, (start, end) = next(names)
        grouped[name].append(record)
    return grouped


def _shifted_clone(instr, delta, floor, alternate):
    """``instr`` with data disps shifted by ``delta`` and the requested
    ModRM direction."""
    operands = tuple(
        Mem(base=op.base, index=op.index, scale=op.scale,
            disp=op.disp + delta, symbol=op.symbol)
        if isinstance(op, Mem) and op.disp >= floor else op
        for op in instr.operands)
    return Instr(instr.mnemonic, *operands, alternate_encoding=alternate)


class EquivalenceProver:
    """Prove many §6 variants against one baseline, amortizing its cost.

    Everything baseline-only is computed once: record/image validation,
    record tiling, per-function record grouping, the label index and
    the per-record global index. ``prove(variant)`` returns an
    :class:`EquivalenceReport`; on success its :attr:`~
    EquivalenceReport.map` and :attr:`~EquivalenceReport.count_plan`
    byproducts power exact ΔBreakpad symbolication and analytic batch
    derivation for configs the NOP-transparency prover must refuse.
    """

    def __init__(self, baseline, *, baseline_name="baseline"):
        self.baseline = baseline
        self.baseline_name = baseline_name
        self._b_record_finding = _record_image_finding(baseline, "baseline")
        self._b_coverage_finding = _coverage_finding(baseline, "baseline")
        self._b_labels = _label_index(baseline)
        self._b_order = _function_order(baseline)
        self._b_tiles = _ranges_tile(baseline, [], "baseline")
        self._b_groups = (_records_by_function(baseline)
                          if self._b_tiles else {})
        self._b_index = {id(record): index for index, record
                         in enumerate(baseline.instr_records)}

    # -- the proof -----------------------------------------------------------

    def prove(self, variant, *, variant_name="variant"):
        """Prove ``variant`` semantically equivalent to the baseline."""
        report = EquivalenceReport(baseline_name=self.baseline_name,
                                   variant_name=variant_name)
        findings = report.findings
        with span("equivalence_prove", variant=variant_name):
            state = self._prove(variant, findings)
        metrics.inc("equivalence.proofs")
        report.stats = state.pop("stats", {})
        if findings:
            metrics.inc("equivalence.proof_failures")
            for finding in findings:
                metrics.inc(f"equivalence.refusals.{finding.code}")
            return report
        report.map = EquivalenceMap(
            baseline=self.baseline, variant_text_base=variant.text_base,
            variant_text_size=len(variant.text),
            v2b=state["v2b"], b2v=state["b2v"])
        report.count_plan = state["count_plan"]
        report.sled_spans = [
            (variant.text_base + start, variant.text_base + end)
            for start, end in sorted(state["sled_spans"])]
        return report

    def _prove(self, variant, findings):
        baseline = self.baseline
        state = {"stats": {}}
        if baseline.text_base != variant.text_base:
            findings.append(Finding(
                "verify.equivalence.layout",
                f"text bases differ: {baseline.text_base:#x} vs "
                f"{variant.text_base:#x}"))
            return state

        # 1. Pin every byte of both images to a validated record.
        for finding in (self._b_record_finding, self._b_coverage_finding,
                        None if self._b_tiles else Finding(
                            "verify.equivalence.layout",
                            "baseline function ranges do not tile")):
            if finding is not None:
                findings.append(finding)
                return state
        for finding in (_record_image_finding(variant, "variant"),
                        _coverage_finding(variant, "variant")):
            if finding is not None:
                findings.append(finding)
                return state

        # 2. Layouts: same function set, both tiled, reorder-safe ends.
        if set(baseline.function_ranges) != set(variant.function_ranges):
            only_b = sorted(set(baseline.function_ranges)
                            - set(variant.function_ranges))
            only_v = sorted(set(variant.function_ranges)
                            - set(baseline.function_ranges))
            findings.append(Finding(
                "verify.equivalence.layout",
                f"function sets differ: baseline-only {only_b[:4]}, "
                f"variant-only {only_v[:4]}"))
            return state
        if not _ranges_tile(variant, findings, "variant"):
            return state
        v_order = _function_order(variant)
        reordered = v_order != self._b_order
        v_groups = _records_by_function(variant)
        b_groups = self._b_groups
        if reordered:
            # A fallthrough boundary is only safe when the successor
            # function is the same on both sides; identical orders
            # guarantee that, permuted ones must prove no fallthrough.
            for name in self._b_order:
                group = b_groups[name]
                if group and group[-1].mnemonic not in _NO_FALLTHROUGH:
                    findings.append(Finding(
                        "verify.equivalence.layout",
                        f"function {name!r} ends in "
                        f"{group[-1].mnemonic!r}, which can fall "
                        f"through — its layout position is semantic and "
                        f"cannot be permuted", address=group[-1].address,
                        function=name))
                    return state

        # 3. Per-function record alignment.
        delta = variant.data_base - baseline.data_base
        floor = baseline.data_base
        v2b = {}
        b2v = {}
        plan_by_id = {}
        sled_spans = []  # (start_offset, end_offset) of proven interiors
        sled_extra_symbols = {}  # skip-label address -> function
        branch_pairs = []  # (b_target, v_target, v_record, function)
        stats = {"substituted": 0, "inserted_nops": 0, "sled_functions": 0,
                 "sled_bytes": 0, "carried": 0, "reordered": reordered}
        for name in v_order:
            ok = self._align_function(
                name, b_groups[name], v_groups[name], variant, delta,
                floor, findings, v2b, b2v, plan_by_id, sled_spans,
                sled_extra_symbols, branch_pairs, stats)
            if not ok:
                state["stats"] = stats
                return state

        # 4. Sled dead-code proof, whole-binary half: nothing enters a
        # sled interior. (Interior bytes/NOP-ness were proven during
        # alignment; here every branch target, code symbol and the
        # entry point are checked against every interior.)
        if sled_spans:
            self._check_sled_isolation(variant, sled_spans, branch_pairs,
                                       findings)

        # 5. Branch targets, label-mediated.
        self._check_branches(variant, branch_pairs, findings)

        # 6. Code symbols and entry point moved with their records.
        self._check_symbols(variant, v2b, b2v, sled_extra_symbols,
                            v_groups, findings)

        # 7. Data segments modulo the base shift.
        _check_data_segments(self.baseline, variant, findings)

        state["stats"] = stats
        if findings:
            return state

        # Assemble the count plan in variant record order.
        state["count_plan"] = [plan_by_id[id(record)]
                               for record in variant.instr_records]
        state["v2b"] = v2b
        state["b2v"] = b2v
        state["sled_spans"] = sled_spans
        return state

    # -- per-function alignment ----------------------------------------------

    def _align_function(self, name, b_records, v_records, variant, delta,
                        floor, findings, v2b, b2v, plan_by_id, sled_spans,
                        sled_extra_symbols, branch_pairs, stats):
        """Two-pointer walk pairing one function's records.

        Returns False when alignment failed hard enough that continuing
        this function would only produce noise (a finding was recorded).
        """
        baseline = self.baseline
        base = baseline.text_base
        j = 0

        # Optional sled: an unmatched leading jmp over inserted NOPs.
        if v_records and self._is_sled_head(name, b_records, v_records,
                                            variant):
            jmp = v_records[0]
            target = (jmp.address + jmp.size + jmp.instr.operands[0].value)
            interior_start = jmp.address + jmp.size
            j = 1
            sled_nops = []
            while (j < len(v_records)
                   and v_records[j].address < target):
                record = v_records[j]
                chunk = _slice_of(variant, record)
                candidate = match_nop_candidate(chunk)
                if (not record.is_inserted_nop or candidate is None
                        or candidate.size != len(chunk)):
                    findings.append(Finding(
                        "verify.equivalence.sled",
                        f"sled interior of {name!r} holds non-NOP bytes "
                        f"{bytes(chunk).hex()}", address=record.address,
                        function=name))
                    return False
                sled_nops.append(record)
                j += 1
            if interior_start + sum(r.size for r in sled_nops) != target:
                findings.append(Finding(
                    "verify.equivalence.sled",
                    f"sled jump in {name!r} does not land exactly past "
                    f"its NOP run", address=jmp.address, function=name))
                return False
            first_carried = self._first_carried_index(b_records)
            if first_carried is None:
                findings.append(Finding(
                    "verify.equivalence.sled",
                    f"variant {name!r} opens with a sled but the "
                    f"baseline function is empty", address=jmp.address,
                    function=name))
                return False
            plan_by_id[id(jmp)] = (PLAN_SLED_JMP, first_carried, ())
            v2b[jmp.address - base] = (first_carried, "sled_jump")
            for record in sled_nops:
                plan_by_id[id(record)] = (PLAN_SLED_NOP,)
                v2b[record.address - base] = (first_carried, "sled_nop")
            sled_spans.append((interior_start - base, target - base))
            sled_extra_symbols[target] = (name, jmp)
            stats["sled_functions"] += 1
            stats["sled_bytes"] += target - interior_start

        # Carried / inserted-NOP walk over the remainder.
        i = 0
        pending = []
        while j < len(v_records):
            record = v_records[j]
            if record.is_inserted_nop:
                chunk = _slice_of(variant, record)
                candidate = match_nop_candidate(chunk)
                if candidate is None or candidate.size != len(chunk):
                    findings.append(Finding(
                        "verify.transparency.nop",
                        f"inserted instruction bytes "
                        f"{bytes(chunk).hex()} are not a Table-1 NOP "
                        f"encoding", address=record.address,
                        function=name))
                    return False
                pending.append(record)
                j += 1
                continue
            if i >= len(b_records):
                findings.append(Finding(
                    "verify.equivalence.stream",
                    f"variant {name!r} carries "
                    f"{record.instr!r} past the end of the baseline "
                    f"stream", address=record.address, function=name))
                return False
            b_record = b_records[i]
            status = self._match_carried(b_record, record, variant, delta,
                                         floor, findings, branch_pairs,
                                         name)
            if status is None:
                return False
            b_index = self._b_index[id(b_record)]
            for nop in pending:
                plan_by_id[id(nop)] = (PLAN_NOP, b_index)
                v2b[nop.address - base] = (b_index, "inserted_nop")
                stats["inserted_nops"] += 1
            # b→v uses slot-head semantics, as the linker does: labels
            # (and therefore branch targets) land at the head of the
            # inserted-NOP run riding in front of a carried instruction.
            slot_head = pending[0] if pending else record
            pending = []
            plan_by_id[id(record)] = (PLAN_CARRIED, b_index)
            v2b[record.address - base] = (b_index, status)
            b2v[b_record.address - base] = slot_head.address - base
            stats["carried"] += 1
            if status == "substituted":
                stats["substituted"] += 1
            i += 1
            j += 1
        if pending:
            findings.append(Finding(
                "verify.equivalence.stream",
                f"variant {name!r} ends with {len(pending)} inserted "
                f"NOP(s) after its last carried instruction",
                address=pending[0].address, function=name))
            return False
        if i < len(b_records):
            findings.append(Finding(
                "verify.equivalence.stream",
                f"variant {name!r} is missing "
                f"{len(b_records) - i} baseline instruction(s) "
                f"starting with {b_records[i].instr!r}",
                address=b_records[i].address, function=name))
            return False
        return True

    def _first_carried_index(self, b_records):
        """Global index of the function's first baseline record."""
        if not b_records:
            return None
        return self._b_index[id(b_records[0])]

    def _is_sled_head(self, name, b_records, v_records, variant):
        """Would treating ``v_records[0]`` as a sled jump be *required*?

        A leading non-inserted ``jmp`` opens a sled iff it cannot be the
        function's first carried instruction — i.e. pairing it with
        ``b_records[0]`` fails — and it jumps forward over at least one
        record. The deeper sled obligations (NOP interior, exact
        landing, isolation) are checked by the caller; this is only the
        disambiguation between "carried jmp" and "sled jmp".
        """
        head = v_records[0]
        if head.is_inserted_nop or head.mnemonic != "jmp":
            return False
        if not head.instr.is_relative_branch:
            return False
        target = head.address + head.size + head.instr.operands[0].value
        if target <= head.address + head.size:
            return False  # backward/empty: a sled has >= 1 NOP byte
        f_start, f_end = variant.function_ranges[name]
        if not (target <= f_end):
            return False
        if b_records and b_records[0].mnemonic == "jmp" \
                and b_records[0].instr.is_relative_branch:
            # Ambiguous: the baseline function also opens with a jmp.
            # It is carried iff its target maps label-for-label; a sled
            # jump targets its own fresh skip label instead.
            b_head = b_records[0]
            b_target = (b_head.address + b_head.size
                        + b_head.instr.operands[0].value)
            for label in self._b_labels.get(b_target, ()):
                if variant.code_symbols.get(label) == target:
                    return False  # valid carried jmp; not a sled
        return True

    def _match_carried(self, b_record, v_record, variant, delta, floor,
                       findings, branch_pairs, name):
        """Prove one carried pair equivalent; returns ``"exact"`` /
        ``"substituted"`` or ``None`` after recording a finding."""
        b_instr, v_instr = b_record.instr, v_record.instr
        if (b_instr.mnemonic != v_instr.mnemonic
                or b_record.block_id != v_record.block_id):
            findings.append(Finding(
                "verify.equivalence.stream",
                f"stream mismatch in {name!r}: baseline {b_instr!r} at "
                f"{b_record.address:#x} vs variant {v_instr!r}",
                address=v_record.address, function=name))
            return None
        if b_instr.is_relative_branch:
            b_target = (b_record.address + b_record.size
                        + b_instr.operands[0].value)
            v_target = (v_record.address + v_record.size
                        + v_instr.operands[0].value)
            branch_pairs.append((b_target, v_target, v_record, name))
            return "exact"
        b_chunk = _slice_of(self.baseline, b_record)
        v_chunk = _slice_of(variant, v_record)
        if bytes(b_chunk) == bytes(v_chunk) and delta == 0:
            return "exact"
        # Independent re-derivation: decode both chunks with the real
        # decoder (the simulator executes through it, so decode-level
        # agreement modulo the data shift is semantic agreement) ...
        try:
            b_decoded = decode(bytes(b_chunk), 0)
            v_decoded = decode(bytes(v_chunk), 0)
        except DecodingError as exc:
            findings.append(Finding(
                "verify.equivalence.stream",
                f"carried bytes in {name!r} do not decode: {exc}",
                address=v_record.address, function=name))
            return None
        if (b_decoded.mnemonic != v_decoded.mnemonic
                or not _operands_match(b_decoded, v_decoded, delta, floor)):
            findings.append(Finding(
                "verify.equivalence.stream",
                f"carried instruction changed operation in {name!r}: "
                f"baseline bytes decode to {b_decoded!r}, variant bytes "
                f"to {v_decoded!r}", address=v_record.address,
                function=name))
            return None
        # ... then require the variant bytes to be one of the two dual-
        # ModRM encodings of the shifted baseline instruction, via the
        # encoder — the same algebra the substitution pass used.
        encodings = {}
        for alternate in (False, True):
            try:
                encodings[alternate] = encode(
                    _shifted_clone(b_instr, delta, floor, alternate))
            except EncodingError:
                encodings[alternate] = None
        v_bytes = bytes(v_chunk)
        if v_bytes == encodings[b_instr.alternate_encoding]:
            return "exact"  # pure relocation, same direction bit
        if v_bytes == encodings[not b_instr.alternate_encoding]:
            return "substituted"
        findings.append(Finding(
            "verify.equivalence.subst",
            f"variant bytes {v_bytes.hex()} in {name!r} are neither "
            f"dual-ModRM encoding of {b_instr!r} (expected "
            f"{encodings[False].hex() if encodings[False] else '?'} or "
            f"{encodings[True].hex() if encodings[True] else '?'})",
            address=v_record.address, function=name))
        return None

    # -- whole-binary checks -------------------------------------------------

    def _check_sled_isolation(self, variant, sled_spans, branch_pairs,
                              findings):
        """Nothing may enter a sled interior: the dead-code proof."""
        base = variant.text_base

        def interior(address):
            offset = address - base
            for start, end in sled_spans:
                if start <= offset < end:
                    return True
            return False

        for _b_target, v_target, v_record, name in branch_pairs:
            if interior(v_target):
                findings.append(Finding(
                    "verify.equivalence.sled",
                    f"branch from {name!r} targets a sled interior at "
                    f"{v_target:#x}", address=v_record.address,
                    function=name))
        for label, address in variant.code_symbols.items():
            if interior(address):
                findings.append(Finding(
                    "verify.equivalence.sled",
                    f"code symbol {label!r} lands inside a sled "
                    f"interior", address=address))
        if interior(variant.entry):
            findings.append(Finding(
                "verify.equivalence.sled",
                "the entry point lands inside a sled interior",
                address=variant.entry))
        # The sled jumps themselves must not target another interior
        # (each was checked to land exactly past its own NOP run).

    def _check_branches(self, variant, branch_pairs, findings):
        """Label-mediated target validation, as in records mode.

        Combined with the symbol check, this pins every displacement —
        including cross-function calls under reordering: the variant
        target must be where a label at the baseline target moved to.
        """
        for b_target, v_target, v_record, name in branch_pairs:
            labels = self._b_labels.get(b_target, ())
            if not any(variant.code_symbols.get(label) == v_target
                       for label in labels):
                findings.append(Finding(
                    "verify.equivalence.branch",
                    f"{v_record.mnemonic} in {name!r} targets "
                    f"{b_target:#x} in the baseline but {v_target:#x} "
                    f"in the variant, and no label maps one to the "
                    f"other", address=v_record.address, function=name))

    def _check_symbols(self, variant, v2b, b2v, sled_extra_symbols,
                       v_groups, findings):
        """Every code symbol (and the entry) moved to a proven location.

        A baseline label at address ``A`` is correct at the carried
        image of ``A``; a label at a sled function's start is *also*
        correct at the sled jump (entering at the jump and entering
        past the sled are the same state transition). The only extra
        variant symbols allowed are the sleds' own skip labels, each at
        its proven sled end.
        """
        baseline = self.baseline
        base = baseline.text_base
        for label, b_address in baseline.code_symbols.items():
            v_address = variant.code_symbols.get(label)
            accepted = set()
            mapped = b2v.get(b_address - base)
            if mapped is not None:
                accepted.add(base + mapped)
            for name, (start, _end) in variant.function_ranges.items():
                b_start, _b_end = baseline.function_ranges[name]
                if b_address == b_start:
                    accepted.add(start)
            if v_address not in accepted:
                findings.append(Finding(
                    "verify.equivalence.symbol",
                    f"code symbol {label!r} moved to "
                    f"{v_address if v_address is None else hex(v_address)}"
                    f", not a proven image of {b_address:#x}",
                    address=b_address))
        extra = set(variant.code_symbols) - set(baseline.code_symbols)
        for label in sorted(extra):
            address = variant.code_symbols[label]
            allowed = (
                address in sled_extra_symbols
                and label == sled_extra_symbols[address][0] + ".__shifted")
            if not allowed:
                findings.append(Finding(
                    "verify.equivalence.symbol",
                    f"variant defines unexpected code symbol {label!r}",
                    address=address))
        v_entry_ok = False
        b_entry = baseline.entry
        mapped = b2v.get(b_entry - base)
        if mapped is not None and variant.entry == base + mapped:
            v_entry_ok = True
        for name, (b_start, _e) in baseline.function_ranges.items():
            if b_entry == b_start \
                    and variant.entry == variant.function_ranges[name][0]:
                v_entry_ok = True
        if not v_entry_ok:
            findings.append(Finding(
                "verify.equivalence.symbol",
                f"entry point did not move with its instruction stream "
                f"({b_entry:#x} -> {variant.entry:#x})",
                address=variant.entry))


def prove_equivalence(baseline, variant, *, baseline_name="baseline",
                      variant_name="variant"):
    """One-shot form of :meth:`EquivalenceProver.prove`.

    For many variants of one baseline, build an
    :class:`EquivalenceProver` instead — this re-derives the baseline
    side every call.
    """
    return EquivalenceProver(
        baseline, baseline_name=baseline_name).prove(
            variant, variant_name=variant_name)


def require_equivalent(baseline, variant, **names):
    """Prove equivalence and raise
    :class:`~repro.errors.EquivalenceError` on any finding."""
    report = prove_equivalence(baseline, variant, **names)
    if not report.ok:
        raise EquivalenceError(
            f"equivalence proof failed: {report.describe()}",
            context={
                "findings": [f.describe() for f in report.findings[:20]],
                "stats": report.stats,
            })
    return report
