"""§6 plan-apply parity: the generalized fast path is bit-exact.

The tentpole contract of the generalized :class:`LinkPlan`: for every
registered workload, every §6 transform config (each transform alone
and all three composed, with NOP insertion riding along) and several
seeds, ``plan.apply(variant)`` is byte-identical to the full
``link([runtime_unit(), variant])`` — text, symbols, data image,
``identity_hash()``, function ranges and instruction records. Also
pins the :class:`PlanProvenance` §6 variants carry for the batch
engine, the ``REPRO_LINK_PLAN=0`` kill switch on §6 configs, and the
``PlanMismatchError`` fallback accounting in the pipeline.
"""

from functools import lru_cache

import pytest

from repro.backend.linker import link
from repro.backend.linkplan import (
    FEATURE_BBSHIFT, FEATURE_REORDERING, FEATURE_SUBSTITUTION,
    build_link_plan, plan_features,
)
from repro.core.config import DiversificationConfig
from repro.core.variants import diversify_unit
from repro.pipeline import ProgramBuild
from repro.runtime.lib import runtime_unit
from repro.workloads.registry import get_workload, workload_names

SEEDS = (0, 1, 2)

#: The four §6 configs of the verify sweep: each transform alone, then
#: all three composed — every one on top of 50% uniform NOP insertion,
#: so the plan's dynamic-NOP path is exercised simultaneously.
SEC6_CONFIGS = {
    "subst": DiversificationConfig.uniform(
        0.50, encoding_substitution=True),
    "bbshift": DiversificationConfig.uniform(
        0.50, basic_block_shifting=True),
    "reorder": DiversificationConfig.uniform(
        0.50, function_reordering=True),
    "sec6": DiversificationConfig.uniform(
        0.50, encoding_substitution=True, basic_block_shifting=True,
        function_reordering=True),
}

EXPECTED_FEATURES = {
    "subst": frozenset({FEATURE_SUBSTITUTION}),
    "bbshift": frozenset({FEATURE_BBSHIFT}),
    "reorder": frozenset({FEATURE_REORDERING}),
    "sec6": frozenset({FEATURE_SUBSTITUTION, FEATURE_BBSHIFT,
                       FEATURE_REORDERING}),
}


@lru_cache(maxsize=None)
def _state(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    plan = build_link_plan([runtime_unit(), build.unit])
    return workload, build, plan


def _assert_bit_identical(planned, full):
    assert planned.text == full.text
    assert planned.identity_hash() == full.identity_hash()
    assert planned.text_base == full.text_base
    assert planned.entry == full.entry
    assert planned.code_symbols == full.code_symbols
    assert planned.data_symbols == full.data_symbols
    assert planned.data_base == full.data_base
    assert planned.data_end == full.data_end
    assert planned.data_words == full.data_words
    assert planned.function_ranges == full.function_ranges
    planned_records = list(planned.instr_records)
    full_records = list(full.instr_records)
    assert len(planned_records) == len(full_records)
    for ours, theirs in zip(planned_records, full_records):
        assert ours.address == theirs.address
        assert ours.size == theirs.size
        assert ours.mnemonic == theirs.mnemonic
        assert ours.block_id == theirs.block_id
        assert ours.is_inserted_nop == theirs.is_inserted_nop
        assert ours.instr.mnemonic == theirs.instr.mnemonic


@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("label", sorted(SEC6_CONFIGS))
def test_sec6_parity(name, label):
    """apply() == link() for every workload x §6 config x seed."""
    _workload, build, plan = _state(name)
    config = SEC6_CONFIGS[label]
    for seed in SEEDS:
        variant = diversify_unit(build.unit, config, seed)
        _assert_bit_identical(plan.apply(variant),
                              link([runtime_unit(), variant]))


@pytest.mark.parametrize("label", sorted(SEC6_CONFIGS))
def test_walk_fallback_parity(label):
    """A delta-less variant takes the identity-check walk, bit-exact.

    The diversifier stamps a ``plan_delta`` merge record on every
    function it touches; a consumer that rebuilds or copies the item
    lists loses it. apply() must then degrade to the original per-item
    walk — same bytes, just slower — not misbehave.
    """
    _workload, build, plan = _state("429.mcf")
    config = SEC6_CONFIGS[label]
    for seed in SEEDS:
        variant = diversify_unit(build.unit, config, seed)
        for function_code in variant.functions:
            if hasattr(function_code, "plan_delta"):
                del function_code.plan_delta
        _assert_bit_identical(plan.apply(variant),
                              link([runtime_unit(), variant]))


def test_corrupt_delta_degrades_to_mismatch():
    """A lying merge record raises PlanMismatchError, never wrong
    bytes."""
    from repro.errors import PlanMismatchError
    _workload, build, plan = _state("429.mcf")
    config = SEC6_CONFIGS["sec6"]
    corruptions = (
        lambda ins, fl: (ins[1:], fl),             # dropped insertion
        lambda ins, fl: (tuple(reversed(ins)), fl),  # out of order
        lambda ins, fl: (ins, fl + (0,)),          # flip with no slot
    )
    for corrupt in corruptions:
        variant = diversify_unit(build.unit, config, seed=2)
        for function_code in variant.functions:
            delta = getattr(function_code, "plan_delta", None)
            if delta is not None and len(delta[0]) > 1:
                function_code.plan_delta = corrupt(*delta)
                break
        with pytest.raises(PlanMismatchError):
            plan.apply(variant)


class TestProvenance:
    """§6 variants carry a link-time count plan for the batch engine."""

    def test_features_reflect_what_the_variant_exercised(self):
        _workload, build, plan = _state("429.mcf")
        for label, config in SEC6_CONFIGS.items():
            seen = set()
            for seed in range(8):
                variant = diversify_unit(build.unit, config, seed)
                binary = plan.apply(variant)
                if binary.provenance is not None:
                    assert binary.provenance.features <= \
                        EXPECTED_FEATURES[label]
                    seen |= binary.provenance.features
            # Over a handful of seeds every enabled transform fires at
            # least once (bb-shift draws sled size 0 sometimes, never
            # always).
            assert seen == EXPECTED_FEATURES[label]

    def test_nop_only_variants_carry_no_provenance(self):
        _workload, build, plan = _state("429.mcf")
        config = DiversificationConfig.uniform(0.5)
        binary = plan.apply(diversify_unit(build.unit, config, seed=1))
        assert binary.provenance is None

    def test_count_plan_matches_the_equivalence_proof(self):
        from repro.analysis.equivalence import EquivalenceProver
        _workload, build, plan = _state("429.mcf")
        baseline = plan.baseline()
        prover = EquivalenceProver(baseline)
        config = SEC6_CONFIGS["sec6"]
        checked = 0
        for seed in SEEDS:
            variant = diversify_unit(build.unit, config, seed)
            binary = plan.apply(variant)
            if binary.provenance is None:
                continue
            derived = binary.provenance.count_plan
            if derived is None:
                continue
            proof = prover.prove(binary)
            assert proof.ok
            assert derived == proof.count_plan
            checked += 1
        assert checked  # the sweep must actually compare something

    def test_provenance_never_survives_pickling(self):
        import pickle
        _workload, build, plan = _state("429.mcf")
        variant = diversify_unit(build.unit, SEC6_CONFIGS["subst"],
                                 seed=0)
        binary = plan.apply(variant)
        assert binary.provenance is not None
        restored = pickle.loads(pickle.dumps(binary))
        assert restored.provenance is None
        assert restored.identity_hash() == binary.identity_hash()

    def test_batch_engine_derives_from_provenance(self):
        from repro.obs import metrics
        from repro.sim.batch import PopulationSimulator
        workload, build, plan = _state("429.mcf")
        baseline = build.link_baseline()
        config = SEC6_CONFIGS["sec6"]
        variants = [build.link_variant(config, seed) for seed in SEEDS]
        assert any(v.provenance is not None for v in variants)
        before = metrics.snapshot()
        sim = PopulationSimulator(baseline, workload.ref_input,
                                  mode="check")
        for variant in variants:
            sim.result_for(variant)
        delta = metrics.delta_since(before)
        assert delta.counters.get("batch.variants_derived_plan", 0) > 0
        assert not sim.warnings


class TestFallbacks:
    """Kill switch and detected-mismatch escape hatches stay wired."""

    @pytest.mark.parametrize("label", sorted(SEC6_CONFIGS))
    def test_kill_switch_matches_plan_path(self, label, monkeypatch):
        workload = get_workload("470.lbm")
        config = SEC6_CONFIGS[label]
        build = ProgramBuild(workload.source, workload.name)
        via_plan = build.link_variant(config, seed=1)
        monkeypatch.setenv("REPRO_LINK_PLAN", "0")
        full_build = ProgramBuild(workload.source, workload.name)
        full = full_build.link_variant(config, seed=1)
        assert full_build._link_plan is None
        assert via_plan.text == full.text
        assert via_plan.identity_hash() == full.identity_hash()
        assert full.provenance is None  # full link never attaches one

    def test_mismatch_falls_back_to_full_link(self, monkeypatch):
        """A plan that rejects the stream still yields a correct link."""
        from repro.backend import linkplan
        from repro.errors import PlanMismatchError
        from repro.obs import metrics
        workload = get_workload("429.mcf")
        config = SEC6_CONFIGS["subst"]
        build = ProgramBuild(workload.source, workload.name)
        expected = link([runtime_unit(),
                         diversify_unit(build.unit, config, seed=4)])

        def always_mismatch(self, unit, **kwargs):
            raise PlanMismatchError("forced for the fallback test")

        monkeypatch.setattr(linkplan.LinkPlan, "apply", always_mismatch)
        before = metrics.snapshot()
        binary = build.link_variant(config, seed=4)
        delta = metrics.delta_since(before)
        assert binary.identity_hash() == expected.identity_hash()
        assert delta.counters.get("linkplan.fallbacks", 0) == 1

    def test_sec6_config_features(self):
        for label, config in SEC6_CONFIGS.items():
            assert plan_features(config) == EXPECTED_FEATURES[label]
