"""445.gobmk — the game of Go.

The original is a large rule-based engine: board scans, liberty counting,
influence propagation and pattern matching across many functions. The
miniature plays random-ish stones on a 13×13 board and evaluates with
flood-fill liberty counting, chain capture detection and an influence
map — lots of distinct mid-heat functions, branch-dense.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 445.gobmk miniature: Go board evaluation on 13x13.
int board[169];        // 0 empty, 1 black, 2 white
int mark[169];
int flood_stack[169];
int influence[169];
int capture_count[4];

int on_board(int pos) {
  if (pos < 0) { return 0; }
  if (pos >= 169) { return 0; }
  return 1;
}

int neighbor(int pos, int dir) {
  int x = pos % 13;
  int y = pos / 13;
  if (dir == 0) { if (x == 12) { return -1; } return pos + 1; }
  if (dir == 1) { if (x == 0) { return -1; } return pos - 1; }
  if (dir == 2) { if (y == 12) { return -1; } return pos + 13; }
  if (y == 0) { return -1; }
  return pos - 13;
}

int count_liberties(int start) {
  int color = board[start];
  if (color == 0) { return 0; }
  int i;
  for (i = 0; i < 169; i++) { mark[i] = 0; }
  int top = 0;
  flood_stack[top] = start;
  top++;
  mark[start] = 1;
  int liberties = 0;
  // Flood fill over the chain, counting adjacent empties.
  while (top > 0) {
    top--;
    int pos = flood_stack[top];
    int d;
    for (d = 0; d < 4; d++) {
      int n = neighbor(pos, d);
      if (n < 0) { continue; }
      if (mark[n]) { continue; }
      if (board[n] == 0) {
        mark[n] = 1;
        liberties++;
      } else if (board[n] == color) {
        mark[n] = 1;
        flood_stack[top] = n;
        top++;
      }
    }
  }
  return liberties;
}

void remove_chain(int start) {
  int color = board[start];
  int i;
  for (i = 0; i < 169; i++) { mark[i] = 0; }
  int top = 0;
  flood_stack[top] = start;
  top++;
  mark[start] = 1;
  while (top > 0) {
    top--;
    int pos = flood_stack[top];
    board[pos] = 0;
    capture_count[color]++;
    int d;
    for (d = 0; d < 4; d++) {
      int n = neighbor(pos, d);
      if (n >= 0 && board[n] == color && !mark[n]) {
        mark[n] = 1;
        flood_stack[top] = n;
        top++;
      }
    }
  }
}

void play_stone(int pos, int color) {
  if (board[pos] != 0) { return; }
  board[pos] = color;
  int other = 3 - color;
  int d;
  // Capture any adjacent enemy chain left without liberties.
  for (d = 0; d < 4; d++) {
    int n = neighbor(pos, d);
    if (n >= 0 && board[n] == other) {
      if (count_liberties(n) == 0) { remove_chain(n); }
    }
  }
  if (count_liberties(pos) == 0) { remove_chain(pos); }
}

void spread_influence() {
  int i;
  for (i = 0; i < 169; i++) {
    if (board[i] == 1) { influence[i] = 64; }
    else if (board[i] == 2) { influence[i] = -64; }
    else { influence[i] = 0; }
  }
  int pass;
  for (pass = 0; pass < 3; pass++) {
    for (i = 0; i < 169; i++) {
      int acc = influence[i] * 2;
      int d;
      for (d = 0; d < 4; d++) {
        int n = neighbor(i, d);
        if (n >= 0) { acc += influence[n]; }
      }
      influence[i] = acc / 6;
    }
  }
}

int score_position() {
  spread_influence();
  int score = 0;
  int i;
  for (i = 0; i < 169; i++) {
    if (influence[i] > 4) { score++; }
    if (influence[i] < -4) { score--; }
  }
  return score + capture_count[2] - capture_count[1];
}

int main() {
  int moves = input();
  int games = input();
  int seed = input();
  int total = 0;
  int g;
  for (g = 0; g < games; g++) {
    int i;
    for (i = 0; i < 169; i++) { board[i] = 0; }
    capture_count[1] = 0;
    capture_count[2] = 0;
    int x = seed + g * 31;
    int m;
    for (m = 0; m < moves; m++) {
      x = (x * 1103515245 + 12345) & 2147483647;
      play_stone(x % 169, 1 + (m & 1));
    }
    total = (total + score_position() + 500) & 16777215;
  }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="445.gobmk",
    source=SOURCE + bank_for("445.gobmk"),
    train_input=(40, 1, 5),
    ref_input=(120, 4, 17),
    character="Go engine: flood fills, captures, influence; branch-dense",
)
