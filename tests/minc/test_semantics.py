"""Language-semantics tests, executed on the reference interpreter.

Each test compiles a small program and checks its printed output — the
observable contract every later pipeline stage must preserve.
"""

from repro.ir import run_module
from repro.minc import compile_to_ir


def run(source, inputs=()):
    return run_module(compile_to_ir(source), inputs).output


def run_main(body, inputs=()):
    return run("int main() { " + body + " return 0; }", inputs)


class TestArithmetic:
    def test_basic_operations(self):
        assert run_main("print(2 + 3 * 4); print(10 - 7); print(20 / 4);")\
            == [14, 3, 5]

    def test_division_truncates_toward_zero(self):
        assert run_main("print(-7 / 2); print(7 / -2); print(-7 % 2); "
                        "print(7 % -2);") == [-3, -3, -1, 1]

    def test_division_by_zero_yields_zero(self):
        # The documented total-division semantics (shared with IDIV in
        # the simulator).
        assert run_main("int z = 0; print(5 / z); print(5 % z);") == [0, 0]

    def test_wrapping_multiplication(self):
        assert run_main("print(100000 * 100000);") == [1410065408]

    def test_int_min_negation_wraps(self):
        assert run_main("int m = -2147483647 - 1; print(-m);") \
            == [-2147483648]

    def test_shifts(self):
        assert run_main("print(1 << 10); print(-8 >> 1); print(7 >> 1);")\
            == [1024, -4, 3]

    def test_bitwise(self):
        assert run_main("print(12 & 10); print(12 | 10); print(12 ^ 10); "
                        "print(~0);") == [8, 14, 6, -1]


class TestComparisonsAndLogic:
    def test_comparisons_produce_zero_or_one(self):
        assert run_main("print(3 < 5); print(5 < 3); print(3 <= 3); "
                        "print(3 == 4); print(3 != 4);") == [1, 0, 1, 0, 1]

    def test_logical_not(self):
        assert run_main("print(!0); print(!7); print(!!7);") == [1, 0, 1]

    def test_short_circuit_and_skips_rhs(self):
        source = """
        int calls = 0;
        int bump() { calls = calls + 1; return 1; }
        int main() {
          int r = 0 && bump();
          print(r);
          print(calls);
          r = 1 && bump();
          print(r);
          print(calls);
          return 0;
        }
        """
        assert run(source) == [0, 0, 1, 1]

    def test_short_circuit_or_skips_rhs(self):
        source = """
        int calls = 0;
        int bump() { calls = calls + 1; return 0; }
        int main() {
          print(1 || bump());
          print(calls);
          print(0 || bump());
          print(calls);
          return 0;
        }
        """
        assert run(source) == [1, 0, 0, 1]

    def test_logical_result_is_normalized(self):
        assert run_main("print(7 && 9); print(0 || 5);") == [1, 1]


class TestControlFlow:
    def test_while_with_break_continue(self):
        body = """
        int i = 0; int acc = 0;
        while (i < 10) {
          i++;
          if (i == 3) { continue; }
          if (i == 7) { break; }
          acc += i;
        }
        print(acc);
        """
        assert run_main(body) == [1 + 2 + 4 + 5 + 6]

    def test_nested_loops(self):
        body = """
        int total = 0;
        int i; int j;
        for (i = 0; i < 4; i++) {
          for (j = 0; j < 3; j++) {
            total += i * j;
          }
        }
        print(total);
        """
        assert run_main(body) == [sum(i * j for i in range(4)
                                      for j in range(3))]

    def test_for_continue_still_steps(self):
        body = """
        int acc = 0;
        int i;
        for (i = 0; i < 5; i++) {
          if (i == 2) { continue; }
          acc += i;
        }
        print(acc); print(i);
        """
        assert run_main(body) == [0 + 1 + 3 + 4, 5]

    def test_early_return(self):
        source = """
        int f(int x) {
          if (x > 0) { return 1; }
          return -1;
        }
        int main() { print(f(5)); print(f(-5)); return 0; }
        """
        assert run(source) == [1, -1]

    def test_missing_return_yields_zero(self):
        source = "int f() { } int main() { print(f()); return 0; }"
        assert run(source) == [0]


class TestDataAndCalls:
    def test_globals_persist_across_calls(self):
        source = """
        int counter = 100;
        void tick() { counter = counter + 1; }
        int main() { tick(); tick(); tick(); print(counter); return 0; }
        """
        assert run(source) == [103]

    def test_global_array_initializer(self):
        source = ("int a[5] = {10, 20, 30};\n"
                  "int main() { print(a[0] + a[2] + a[4]); return 0; }")
        assert run(source) == [40]

    def test_recursion(self):
        source = """
        int fact(int n) {
          if (n <= 1) { return 1; }
          return n * fact(n - 1);
        }
        int main() { print(fact(10)); return 0; }
        """
        assert run(source) == [3628800]

    def test_mutual_recursion(self):
        # MinC has no prototypes, but calls resolve at program level, so
        # mutual recursion works regardless of definition order.
        source = """
        int is_even(int n) {
          if (n == 0) { return 1; }
          return is_odd_helper(n - 1);
        }
        int is_odd_helper(int n) {
          if (n == 0) { return 0; }
          return is_even(n - 1);
        }
        int main() { print(is_even(10)); print(is_even(7)); return 0; }
        """
        assert run(source) == [1, 0]

    def test_arguments_evaluated_left_to_right(self):
        source = """
        int log_val[4];
        int log_pos = 0;
        int note(int x) { log_val[log_pos] = x; log_pos++; return x; }
        int two(int a, int b) { return a * 10 + b; }
        int main() {
          print(two(note(1), note(2)));
          print(log_val[0]); print(log_val[1]);
          return 0;
        }
        """
        assert run(source) == [12, 1, 2]

    def test_input_reads_in_order_and_zero_pads(self):
        assert run_main("print(input()); print(input()); print(input());",
                        [11, 22]) == [11, 22, 0]

    def test_compound_assignment_on_array_element(self):
        source = """
        int a[4] = {1, 2, 3, 4};
        int main() {
          int i = 2;
          a[i] += 10;
          a[i + 1] *= 5;
          print(a[2]); print(a[3]);
          return 0;
        }
        """
        assert run(source) == [13, 20]

    def test_incdec_statements(self):
        body = "int x = 5; x++; x++; x--; print(x);"
        assert run_main(body) == [6]

    def test_compound_assignments(self):
        body = ("int x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; "
                "x <<= 3; x >>= 1; x |= 1; x ^= 3; x &= 6; print(x);")
        expected = 10
        expected += 5
        expected -= 3
        expected *= 2
        expected //= 4
        expected %= 4
        expected <<= 3
        expected >>= 1
        expected |= 1
        expected ^= 3
        expected &= 6
        assert run_main(body) == [expected]


def test_mutual_recursion_requires_definition_before_use_is_not_enforced():
    # Calls resolve at the program level, so later definitions are fine.
    source = """
    int a(int n) { if (n == 0) { return 0; } return b(n - 1); }
    int b(int n) { if (n == 0) { return 1; } return a(n - 1); }
    int main() { print(a(4)); print(a(5)); return 0; }
    """
    assert run(source) == [0, 1]
