"""400.perlbench — Perl interpreter.

The original runs the Perl core on string-processing scripts: opcode
dispatch, hashing and regex state machines — integer/branch work with few
memory accesses per decoded character (strings are processed from packed
words). It is one of the two benchmarks with the highest NOP-insertion
overhead in the paper (~25% at pNOP=50%), i.e. firmly issue-bound. The
miniature interleaves a string hash, a regex-like state machine over
packed characters, and opcode-style dispatch, all dominated by scalar ALU
operations and branches.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 400.perlbench miniature: hashing + state machine over packed strings.
int packed_text[512];   // 4 chars per word
int hash_table[256];

void make_text(int words, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < words; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    packed_text[i] = x;
  }
}

int hash_span(int words) {
  int h = 5381;
  int i;
  // Hot loop 1: djb2-style hash, four packed chars per load.
  for (i = 0; i < words; i++) {
    int w = packed_text[i];
    int c0 = w & 255;
    int c1 = (w >> 8) & 255;
    int c2 = (w >> 16) & 255;
    int c3 = (w >> 24) & 255;
    h = ((h << 5) + h + c0) & 16777215;
    h = ((h << 5) + h + c1) & 16777215;
    h = ((h << 5) + h + c2) & 16777215;
    h = ((h << 5) + h + c3) & 16777215;
  }
  return h;
}

int regex_match(int words, int pattern_a, int pattern_b) {
  int state = 0;
  int matches = 0;
  int i;
  // Hot loop 2: a 4-state matcher; per character only shifts, masks,
  // compares and branches -- no memory traffic inside the word.
  for (i = 0; i < words; i++) {
    int w = packed_text[i];
    int k;
    for (k = 0; k < 4; k++) {
      int c = (w >> (k * 8)) & 255;
      if (state == 0) {
        if ((c & 63) == pattern_a) { state = 1; }
      } else if (state == 1) {
        if ((c & 63) == pattern_b) { state = 2; } else { state = 0; }
      } else if (state == 2) {
        if ((c & 1) == 0) { matches++; state = 3; } else { state = 0; }
      } else {
        state = 0;
      }
    }
  }
  return matches;
}

int dispatch(int op, int a, int b) {
  if (op == 0) { return a + b; }
  if (op == 1) { return a - b; }
  if (op == 2) { return (a << 1) ^ b; }
  if (op == 3) { return a & b; }
  if (op == 4) { return a | (b >> 1); }
  if (op == 5) { return a * 3 + b; }
  if (op == 6) { if (a > b) { return a; } return b; }
  return a ^ b;
}

int interp_loop(int iterations, int seed) {
  int acc = 7;
  int x = seed;
  int i;
  // Hot loop 3: opcode dispatch, branch-dense scalar work.
  for (i = 0; i < iterations; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int op = x & 7;
    acc = dispatch(op, acc, x >> 8) & 16777215;
  }
  return acc;
}

int main() {
  int words = input();
  int rounds = input();
  int seed = input();
  if (words > 512) { words = 512; }
  int total = 0;
  int r;
  for (r = 0; r < rounds; r++) {
    make_text(words, seed + r);
    int h = hash_span(words);
    hash_table[h & 255] = (hash_table[h & 255] + 1) & 65535;
    total = (total + h) & 16777215;
    total = (total + regex_match(words, 17, 42)) & 16777215;
    total = (total + interp_loop(words * 2, seed + r)) & 16777215;
  }
  int i;
  for (i = 0; i < 256; i++) { total = (total + hash_table[i]) & 16777215; }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="400.perlbench",
    source=SOURCE + bank_for("400.perlbench"),
    train_input=(128, 3, 29),
    ref_input=(512, 8, 101),
    character="issue-bound interpreter mix: hashing, matcher, dispatch "
              "(the paper's worst-case NOP overhead)",
)
