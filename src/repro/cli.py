"""``repro-diversify`` — command-line front end for the diversifying
compiler.

Subcommands::

    compile   FILE              build + disassemble a MinC program
    run       FILE [ints...]    compile, link and simulate
    profile   FILE [ints...]    collect an edge profile, print a summary
    diversify FILE              emit a diversified variant and its stats
    scan      FILE              gadget-scan the linked binary
    bench     NAME              run one SPEC-like workload end to end
    check     [NAMES...]        differential validation + fault campaign
    verify    [NAMES...]        static verification + transparency proofs
    fuzz                        coverage-guided differential fuzzing
    knobs                       print the REPRO_* environment-knob registry

Examples::

    repro-diversify run examples/programs/matrix.minc 8 8
    repro-diversify diversify prog.minc --range 0.0 0.3 --seed 7 \\
        --train 5 5
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import DiversificationConfig
from repro.obs import metrics
from repro.obs.knobs import all_knobs, knob_value
from repro.pipeline import ProgramBuild
from repro.reporting import format_table
from repro.security.gadgets import find_gadgets
from repro.security.survivor import surviving_gadgets
from repro.workloads.registry import get_workload
from repro.x86.asmwriter import format_listing


def _read_source(path):
    with open(path) as handle:
        return handle.read()


def _build(path, name=None):
    return ProgramBuild(_read_source(path), name or path)


def _config_from_args(args):
    if args.range is not None:
        low, high = args.range
        return DiversificationConfig.profile_guided(low, high)
    return DiversificationConfig.uniform(args.p)


#: The paper's two headline configurations, used when ``verify`` is not
#: given an explicit ``--p`` / ``--range``.
def _paper_configs():
    return {
        "uniform-50%": DiversificationConfig.uniform(0.50),
        "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
    }


def _verify_configs(args):
    if args.range is not None:
        low, high = args.range
        configs = {f"{low:g}-{high:g}":
                   DiversificationConfig.profile_guided(low, high)}
    elif args.p is not None:
        configs = {f"uniform-{args.p:g}":
                   DiversificationConfig.uniform(args.p)}
    else:
        configs = _paper_configs()
    if getattr(args, "sec6", False):
        # The §6 transform sweep: each transform alone and all three
        # composed, derived from the last base config (the paper's
        # profile-guided one when no explicit --p/--range was given).
        import dataclasses
        base_label, base = list(configs.items())[-1]
        for suffix, flags in (
                ("subst", {"encoding_substitution": True}),
                ("bbshift", {"basic_block_shifting": True}),
                ("reorder", {"function_reordering": True}),
                ("sec6", {"encoding_substitution": True,
                          "basic_block_shifting": True,
                          "function_reordering": True})):
            configs[f"{base_label}+{suffix}"] = dataclasses.replace(
                base, **flags)
    return configs


def cmd_compile(args):
    build = _build(args.file)
    binary = build.link_baseline()
    instrs = [record.instr for record in binary.instr_records]
    print(format_listing(instrs, base_address=binary.text_base))
    print(f"\n{len(binary.text)} text bytes, "
          f"{len(binary.instr_records)} instructions")
    return 0


def cmd_run(args):
    build = _build(args.file)
    binary = build.link_baseline()
    result = build.simulate(binary, args.inputs)
    for value in result.output:
        print(value)
    print(f"[exit {result.exit_code}, {result.instr_count} instructions]",
          file=sys.stderr)
    return 0


def cmd_profile(args):
    build = _build(args.file)
    profile = build.profile(args.inputs)
    maximum, median, total = profile.summary()
    print(f"edges counted : {len(profile.edge_counts)}")
    print(f"max block     : {maximum}")
    print(f"median block  : {median}")
    print(f"total         : {total}")
    if args.output:
        profile.save(args.output)
        print(f"saved to {args.output}")
    return 0


def cmd_diversify(args):
    build = _build(args.file)
    config = _config_from_args(args)
    profile = None
    if config.requires_profile:
        profile = build.profile(tuple(args.train or ()))
    baseline = build.link_baseline()
    variant = build.link_variant(config, args.seed, profile)
    survivors, _offsets = surviving_gadgets(baseline.text, variant.text)
    total = len(find_gadgets(baseline.text))
    print(f"configuration : {config.describe()}")
    print(f"baseline text : {len(baseline.text)} bytes, {total} gadgets")
    print(f"variant text  : {len(variant.text)} bytes")
    print(f"survivors     : {survivors} ({100*survivors/max(total,1):.2f}%)")
    return 0


def cmd_scan(args):
    build = _build(args.file)
    binary = build.link_baseline()
    gadgets = find_gadgets(binary.text)
    rows = [(f"+{offset:#x}", "; ".join(g.mnemonics()), g.size)
            for offset, g in sorted(gadgets.items())[:args.limit]]
    print(format_table(("offset", "gadget", "bytes"), rows,
                       title=f"{len(gadgets)} gadgets"))
    return 0


def cmd_check(args):
    from repro.check import (
        DEFAULT_CHECK_WORKLOADS, run_campaign, target_from_workload,
        validate_workloads,
    )

    names = tuple(args.names) or DEFAULT_CHECK_WORKLOADS
    variants = args.variants
    fault_seeds = range(args.fault_seeds)
    if args.quick:
        names = names[:1]
        variants = min(variants, 3)
        fault_seeds = range(2)
    config = _config_from_args(args)

    print(f"differential validation: {len(names)} workload(s), "
          f"{variants} variants each, config {config.describe()}")
    results = validate_workloads(names, config, variants)
    rows = []
    divergences = 0
    for name, result in results.items():
        rows.append((name, result.variants_validated, len(result.reports),
                     "ok" if result.ok else "DIVERGED"))
        divergences += len(result.reports)
        for report in result.reports:
            print(f"  !! {report.describe()}", file=sys.stderr)
    print(format_table(("workload", "validated", "divergences", "status"),
                       rows, title="differential validation"))

    print(f"\nfault campaign: {len(names)} target(s), "
          f"{len(fault_seeds)} seed(s) per injector")
    campaign = run_campaign([target_from_workload(name) for name in names],
                            seeds=fault_seeds)
    summary = campaign.summary()
    rows = [(injector, per["typed"], per["masked"], per["untyped"])
            for injector, per in sorted(summary["by_injector"].items())]
    print(format_table(("injector", "typed", "masked", "untyped"), rows,
                       title=f"{summary['faults_injected']} faults injected, "
                             f"{summary['typed_error_coverage']}% typed"))
    for case in campaign.cases:
        if case.outcome == "untyped":
            print(f"  !! {case.describe()}", file=sys.stderr)

    # Static verification rides along: the dynamic checks above prove
    # behaviour on the executed paths; this proves structure on all of
    # them (see docs/ANALYSIS.md).
    sv_variants = 1 if args.quick else 2
    print(f"\nstatic verify: baseline + {sv_variants} variant(s) per "
          f"workload")
    sv_rows, sv_payload, sv_findings = _static_verify_section(
        names, config, sv_variants)
    print(format_table(("workload", "binaries", "nops", "findings",
                        "status"), sv_rows,
                       title="static verification + transparency"))

    from repro.artifacts import cache_stats
    stats = cache_stats()
    print(f"\nartifact cache: {stats['hits']} hits, "
          f"{stats['misses']} misses, {stats['puts']} puts"
          + ("" if knob_value("REPRO_CACHE_DIR")
             else " (REPRO_CACHE_DIR unset: caching disabled)"))

    observability = _observability_section()

    if args.json_output:
        import json
        payload = {
            "workloads": {name: result.summary()
                          for name, result in results.items()},
            "variants_validated": sum(r.variants_validated
                                      for r in results.values()),
            "divergences": divergences,
            "campaign": summary,
            "static_verify": sv_payload,
            "artifact_cache": stats,
            "observability": observability,
        }
        with open(args.json_output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_output}")

    ok = divergences == 0 and campaign.ok and sv_findings == 0
    print("\ncheck:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _observability_section():
    """Print the per-stage timing + counter section; returns its JSON
    payload (what ``--json`` embeds under ``"observability"``).

    Stage timings come from the ``stage.*`` histograms every
    :class:`~repro.obs.trace.span` feeds — including spans that ran in
    pool workers, whose metric deltas were folded into this process —
    and counters are the full metrics registry (NOPs per heat class,
    cache traffic, link-plan fallbacks, verify findings, recorded
    warnings).
    """
    timings = metrics.stage_timings()
    rows = [(stage, entry["calls"], f"{entry['seconds']:.3f}",
             f"{entry['mean']*1000:.2f}", f"{entry['max']*1000:.2f}")
            for stage, entry in sorted(timings.items(),
                                       key=lambda kv: -kv[1]["seconds"])]
    print("\n" + format_table(
        ("stage", "calls", "total s", "mean ms", "max ms"), rows,
        title="per-stage timings"))
    counters = metrics.counters()
    if counters:
        print(format_table(
            ("counter", "value"), sorted(counters.items()),
            title="pipeline counters"))
    return {"stage_timings": timings, "counters": counters}


def _static_verify_section(names, config, variants):
    """Verify baseline + a few variants per workload; returns
    (table rows, JSON payload, total finding count)."""
    from repro.analysis import prove_transparency, verify_binary

    rows = []
    payload = {}
    total = 0
    for name in names:
        workload = get_workload(name)
        build = ProgramBuild(workload.source, workload.name)
        profile = (build.profile(workload.train_input)
                   if config.requires_profile else None)
        baseline = build.link_baseline()
        findings = list(verify_binary(
            baseline, name=f"{name}/baseline").findings)
        nops = 0
        for seed in range(variants):
            variant = build.link_variant(config, seed, profile)
            findings.extend(verify_binary(
                variant, name=f"{name}/seed{seed}").findings)
            proof = prove_transparency(baseline, variant,
                                       variant_name=f"{name}/seed{seed}")
            nops += proof.stats["inserted_nops"]
            findings.extend(proof.findings)
        for finding in findings[:10]:
            print(f"  !! {name}: {finding.describe()}", file=sys.stderr)
        total += len(findings)
        rows.append((name, 1 + variants, nops, len(findings),
                     "ok" if not findings else "FAIL"))
        payload[name] = {
            "binaries": 1 + variants,
            "inserted_nops": nops,
            "findings": [finding.describe() for finding in findings],
        }
    return rows, payload, total


def cmd_verify(args):
    from repro.analysis import (
        prove_transparency, verify_binary, verify_population,
    )
    from repro.backend.linkplan import plan_features
    from repro.check import DEFAULT_CHECK_WORKLOADS
    from repro.security.gadgets import find_gadgets
    from repro.security.ropgadget import boundary_scan, survivor_rates
    from repro.security.survivor import gadget_signatures
    from repro.workloads.registry import workload_names

    names = tuple(args.names) or DEFAULT_CHECK_WORKLOADS
    if names == ("all",):
        names = workload_names()
    configs = _verify_configs(args)
    seeds = list(range(args.variants))

    print(f"static verify: {len(names)} workload(s) x "
          f"{len(configs)} config(s) x {len(seeds)} variant seed(s), "
          f"plus baselines")
    rows = []
    gadget_rows = []
    payload = {}
    total_findings = 0
    for name in names:
        workload = get_workload(name)
        build = ProgramBuild(workload.source, workload.name)
        baseline = build.link_baseline()
        # One gadget scan per workload: boundary classification and
        # Survivor signatures both derive from the same find_gadgets()
        # result, and none of it depends on the config label.
        baseline_gadgets = (find_gadgets(baseline.text)
                            if args.gadgets else None)
        partition = (boundary_scan(baseline, baseline_gadgets)
                     if args.gadgets else None)
        signatures = (gadget_signatures(baseline.text,
                                        gadgets=baseline_gadgets)
                      if args.gadgets else None)
        reports = [verify_binary(baseline, name=f"{name}/baseline")]
        findings = list(reports[0].findings)
        nops = 0
        gadget_payload = {}
        for label, config in configs.items():
            profile = (build.profile(workload.train_input)
                       if config.requires_profile else None)
            binaries = build.link_population(config, seeds, profile,
                                             workers=args.workers)
            variant_names = [f"{name}/{label}/seed{seed}"
                             for seed in seeds]
            nop_transparent = not plan_features(config)
            for report in verify_population(
                    binaries, names=variant_names, workers=args.workers,
                    baseline=None if nop_transparent else baseline):
                reports.append(report)
                findings.extend(report.findings)
                if not nop_transparent:
                    # §6 transforms: verify_population's equivalence
                    # pass already proved this variant once; reuse its
                    # stats and findings instead of proving again.
                    nops += report.stats.get("equivalence",
                                             {}).get("inserted_nops", 0)
            if nop_transparent:
                for seed, variant in zip(seeds, binaries):
                    variant_name = f"{name}/{label}/seed{seed}"
                    proof = prove_transparency(baseline, variant,
                                               variant_name=variant_name)
                    nops += proof.stats["inserted_nops"]
                    findings.extend(proof.findings)
            if args.gadgets:
                per_seed = [survivor_rates(baseline, variant,
                                           baseline_partition=partition,
                                           baseline_signatures=signatures)
                            for variant in binaries]
                mean = lambda values: (sum(values) / len(values)
                                       if values else 0.0)
                summary = {
                    "baseline_gadgets": partition["total"],
                    "survivor_rate": mean([r["rate"] for r in per_seed]),
                    "intended_rate": mean([r["intended"]["rate"]
                                           for r in per_seed]),
                    "unintended_rate": mean([r["unintended"]["rate"]
                                             for r in per_seed]),
                }
                gadget_payload[label] = summary
                gadget_rows.append((
                    name, label, partition["total"],
                    f"{summary['survivor_rate']:.1%}",
                    f"{summary['intended_rate']:.1%}",
                    f"{summary['unintended_rate']:.1%}"))
        total_findings += len(findings)
        rows.append((name, len(reports), nops, len(findings),
                     "ok" if not findings else "FAIL"))
        for finding in findings[:20]:
            print(f"  !! {name}: {finding.describe()}", file=sys.stderr)
        payload[name] = {
            "binaries": len(reports),
            "inserted_nops": nops,
            "findings": [finding.describe() for finding in findings],
        }
        if args.gadgets:
            payload[name]["gadget_survivors"] = gadget_payload
    print(format_table(("workload", "binaries", "nops", "findings",
                        "status"), rows,
                       title="static verification + semantics proofs"))
    if gadget_rows:
        # Pin row order to (workload, config label) so the table is
        # byte-stable across runs regardless of traversal order.
        gadget_rows.sort(key=lambda row: (row[0], row[1]))
        print(format_table(
            ("workload", "config", "gadgets", "surviving", "intended",
             "unintended"), gadget_rows,
            title="surviving-gadget rates (mean over seeds)"))

    observability = _observability_section()

    ok = total_findings == 0
    if args.json_output:
        import json
        with open(args.json_output, "w") as handle:
            json.dump({"workloads": payload, "ok": ok,
                       "observability": observability}, handle, indent=2)
        print(f"wrote {args.json_output}")
    print("\nverify:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def cmd_fuzz(args):
    """Coverage-guided differential fuzzing of the whole pipeline.

    Generates (and mutates) MinC programs, runs each through the
    reference interpreter, the baseline binary and diversified variants
    of both paper configs, and fails on any genuine divergence. See
    ``docs/FUZZING.md``.
    """
    from repro.fuzz import Corpus, FuzzParams, replay, run_fuzz_campaign
    from repro.fuzz.generate import tiny_limits

    corpus_root = (args.corpus if args.corpus is not None
                   else knob_value("REPRO_FUZZ_DIR"))
    corpus = Corpus(corpus_root)

    params = FuzzParams(
        programs=(args.programs if args.programs is not None
                  else knob_value("REPRO_FUZZ_PROGRAMS")),
        variants=(args.variants if args.variants is not None
                  else knob_value("REPRO_FUZZ_VARIANTS")),
        seconds=(args.seconds if args.seconds is not None
                 else knob_value("REPRO_FUZZ_SECONDS")),
        fuel=knob_value("REPRO_FUZZ_FUEL"),
        seed=args.seed,
        shrink=not args.no_shrink)
    if args.quick:
        # Bounded smoke campaign: small programs, one variant seed per
        # config, and a hard wall-clock lid so `make test` stays fast.
        params = FuzzParams(
            programs=params.programs, variants=1,
            seconds=min(params.seconds or 25.0, 25.0),
            fuel=min(params.fuel, 100_000), seed=params.seed,
            limits=tiny_limits(), shrink=params.shrink)

    if args.replay is not None:
        entry, result = replay(corpus, args.replay, params)
        print(f"replay [{entry.entry_id}] kind={entry.kind} "
              f"inputs={list(entry.inputs)}")
        print(entry.source)
        print(f"status: {result.status}, "
              f"{len(result.reports)} divergence report(s)")
        for report in result.reports:
            print(f"  !! {report.describe()}", file=sys.stderr)
        return 1 if result.reports else 0

    print(f"fuzz campaign: {params.programs} candidates, "
          f"{params.variants} variant(s) per config, "
          f"master seed {params.seed}"
          + (f", wall-clock budget {params.seconds:g}s"
             if params.seconds else ""))
    stats = run_fuzz_campaign(params, corpus)
    summary = stats.summary()
    rows = [(key, summary[key]) for key in
            ("execs", "execs_per_second", "generated", "mutants",
             "invalid_mutants", "divergences", "genuine_divergences",
             "coverage_size", "corpus_entries", "shrink_steps",
             "duration_s")]
    rows += [(f"skipped[{reason}]", count)
             for reason, count in summary["skipped"].items()]
    print(format_table(("metric", "value"), rows,
                       title="fuzz campaign"))
    for finding in stats.findings:
        print(f"  !! {finding.describe()}", file=sys.stderr)
        if finding.shrunk_source is not None:
            print(finding.shrunk_source, file=sys.stderr)

    observability = _observability_section()

    if args.json_output:
        import json
        payload = {
            "fuzz": summary,
            "findings": [finding.describe()
                         for finding in stats.findings],
            "corpus_root": corpus.root,
            "observability": observability,
        }
        with open(args.json_output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_output}")

    genuine = len(stats.genuine_findings)
    print("\nfuzz:", "PASS" if genuine == 0 else
          f"FAIL ({genuine} genuine divergence(s))")
    return 0 if genuine == 0 else 1


def cmd_knobs(args):
    """Print the declarative ``REPRO_*`` knob registry.

    Shows every registered environment variable with its type, allowed
    values, default, current (parsed) value and docstring — the
    discoverable replacement for grepping the source for
    ``os.environ``. A knob currently set to an invalid value shows the
    error instead of a value (and the command exits nonzero).
    """
    from repro.errors import ConfigError

    invalid = 0
    rows = []
    payload = {}
    for knob in all_knobs():
        if knob.kind in ("choice", "bool"):
            allowed = "|".join(sorted(knob.choices))
        elif knob.kind == "int":
            allowed = ("int" if knob.minimum is None
                       else f"int >= {knob.minimum}")
        else:
            allowed = "path"
        try:
            current = knob.value()
            shown = "<unset>" if current is None else current
        except ConfigError as exc:
            invalid += 1
            current = None
            shown = f"INVALID ({exc})"
        rows.append((knob.name, allowed,
                     "-" if knob.default is None else knob.default,
                     shown))
        payload[knob.name] = {
            "kind": knob.kind,
            "allowed": allowed,
            "default": knob.default,
            "current": current,
            "doc": knob.doc,
        }
    print(format_table(("knob", "values", "default", "current"), rows,
                       title=f"{len(rows)} registered REPRO_* knobs"))
    print()
    for knob in all_knobs():
        print(f"{knob.name}:")
        print(f"    {knob.doc}")
    if args.json_output:
        import json
        with open(args.json_output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_output}")
    return 1 if invalid else 0


def cmd_serve(args):
    """Run the variant distribution daemon (diversification-as-a-service).

    Binds a TCP port (ephemeral by default; ``--port-file`` publishes
    the chosen one for scripts) and serves per-user verified variants
    of the preloaded — or lazily loaded — (program, config) pairs until
    interrupted. Tuning rides the ``REPRO_SERVE_*`` knobs.
    """
    from repro.serve import SERVE_CONFIGS, daemon

    pairs = []
    for program in args.programs:
        get_workload(program)  # fail fast on a typo, before binding
        for config in (args.configs or ["0-30%"]):
            if config not in SERVE_CONFIGS:
                print(f"unknown config {config!r}; choose from "
                      f"{', '.join(sorted(SERVE_CONFIGS))}",
                      file=sys.stderr)
                return 1
            pairs.append((program, config))
    return daemon.main(host=args.host, port=args.port, programs=pairs,
                       port_file=args.port_file)


def cmd_bench(args):
    workload = get_workload(args.name)
    build = ProgramBuild(workload.source, workload.name)
    result = build.simulate(build.link_baseline(), workload.ref_input)
    print(f"{workload.name}: output={result.output} "
          f"instrs={result.instr_count}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-diversify",
        description="Profile-guided NOP-insertion diversifying compiler "
                    "(CGO 2013 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile and disassemble")
    p.add_argument("file")
    p.set_defaults(handler=cmd_compile)

    p = sub.add_parser("run", help="compile, link and simulate")
    p.add_argument("file")
    p.add_argument("inputs", nargs="*", type=int)
    p.set_defaults(handler=cmd_run)

    p = sub.add_parser("profile", help="collect an edge profile")
    p.add_argument("file")
    p.add_argument("inputs", nargs="*", type=int)
    p.add_argument("--output", "-o", help="save profile JSON here")
    p.set_defaults(handler=cmd_profile)

    p = sub.add_parser("diversify", help="emit a diversified variant")
    p.add_argument("file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--p", type=float, default=0.5,
                   help="uniform insertion probability")
    p.add_argument("--range", nargs=2, type=float, metavar=("MIN", "MAX"),
                   help="profile-guided probability range")
    p.add_argument("--train", nargs="*", type=int,
                   help="training input for profile-guided mode")
    p.set_defaults(handler=cmd_diversify)

    p = sub.add_parser("scan", help="gadget-scan the binary")
    p.add_argument("file")
    p.add_argument("--limit", type=int, default=40)
    p.set_defaults(handler=cmd_scan)

    p = sub.add_parser("bench", help="run one named workload")
    p.add_argument("name")
    p.set_defaults(handler=cmd_bench)

    p = sub.add_parser(
        "check",
        help="differential variant validation + fault-injection campaign")
    p.add_argument("names", nargs="*",
                   help="workloads to validate (default: a representative "
                        "three-benchmark set)")
    p.add_argument("--variants", type=int, default=10,
                   help="population size per workload (default 10)")
    p.add_argument("--fault-seeds", type=int, default=3,
                   help="seeds per fault injector (default 3)")
    p.add_argument("--p", type=float, default=0.5,
                   help="uniform insertion probability")
    p.add_argument("--range", nargs=2, type=float, metavar=("MIN", "MAX"),
                   help="profile-guided probability range")
    p.add_argument("--quick", action="store_true",
                   help="smoke mode: one workload, 3 variants, 2 seeds")
    p.add_argument("--json", dest="json_output",
                   help="write a JSON summary here")
    p.set_defaults(handler=cmd_check)

    p = sub.add_parser(
        "verify",
        help="static verification + semantics-preservation proofs")
    p.add_argument("names", nargs="*",
                   help="workloads to verify ('all' for every workload; "
                        "default: a representative three-benchmark set)")
    p.add_argument("--variants", type=int, default=3,
                   help="variant seeds per config (default 3)")
    p.add_argument("--p", type=float, default=None,
                   help="uniform insertion probability (default: both "
                        "paper configs)")
    p.add_argument("--range", nargs=2, type=float, metavar=("MIN", "MAX"),
                   help="profile-guided probability range")
    p.add_argument("--sec6", action="store_true",
                   help="also sweep the §6 transforms (substitution, "
                        "bb-shift, reordering, and all three composed) "
                        "with machine-checked equivalence proofs")
    p.add_argument("--gadgets", action="store_true",
                   help="report surviving-gadget rates per config over "
                        "the boundary_scan partition (Table 2/3 framing)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker-pool width (default REPRO_WORKERS)")
    p.add_argument("--json", dest="json_output",
                   help="write a JSON summary here")
    p.set_defaults(handler=cmd_verify)

    p = sub.add_parser(
        "fuzz",
        help="coverage-guided differential fuzzing of the pipeline")
    p.add_argument("--programs", type=int, default=None,
                   help="candidate budget (default REPRO_FUZZ_PROGRAMS)")
    p.add_argument("--variants", type=int, default=None,
                   help="variant seeds per config "
                        "(default REPRO_FUZZ_VARIANTS)")
    p.add_argument("--seconds", type=float, default=None,
                   help="wall-clock budget (default REPRO_FUZZ_SECONDS; "
                        "0 = none)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign master seed (default 0)")
    p.add_argument("--quick", action="store_true",
                   help="bounded smoke campaign: tiny programs, one "
                        "variant seed, <=25s")
    p.add_argument("--corpus", default=None,
                   help="on-disk corpus directory "
                        "(default REPRO_FUZZ_DIR; unset = in-memory)")
    p.add_argument("--replay", metavar="ID", default=None,
                   help="re-run one corpus entry by id (or id prefix)")
    p.add_argument("--no-shrink", action="store_true",
                   help="keep diverging inputs unreduced")
    p.add_argument("--json", dest="json_output",
                   help="write a JSON summary here")
    p.set_defaults(handler=cmd_fuzz)

    p = sub.add_parser(
        "knobs",
        help="print the REPRO_* environment-knob registry")
    p.add_argument("--json", dest="json_output",
                   help="write the registry as JSON here")
    p.set_defaults(handler=cmd_knobs)

    p = sub.add_parser(
        "serve",
        help="run the variant distribution daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (default: REPRO_SERVE_PORT, "
                        "0 = ephemeral)")
    p.add_argument("--port-file", default=None,
                   help="write the bound port number to this file")
    p.add_argument("--programs", nargs="*", default=[],
                   metavar="NAME",
                   help="workloads to compile and adopt before "
                        "accepting traffic (others load lazily)")
    p.add_argument("--configs", nargs="*", default=[],
                   metavar="LABEL",
                   help="config labels to preload for each program "
                        "(default: 0-30%%)")
    p.set_defaults(handler=cmd_serve)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
