"""Unit tests for individual optimizer passes."""

from repro.ir import (
    Binary, Branch, Copy, CondBranch, Function, FunctionBuilder, Module,
    Return,
)
from repro.ir.values import Const
from repro.minc import compile_to_ir
from repro.opt.constfold import fold_constants
from repro.opt.copyprop import propagate_copies
from repro.opt.dce import eliminate_dead_code
from repro.opt.simplifycfg import simplify_cfg
from repro.opt.strength import reduce_strength


def single_block_function(instrs):
    function = Function("f")
    builder = FunctionBuilder(function)
    builder.start_block("entry")
    function.entry.instrs = list(instrs) + [Return(Const(0))]
    return function


class TestConstFold:
    def test_folds_constant_binary(self):
        function = Function("f")
        dst = function.new_vreg()
        function = single_block_function(
            [Binary("add", dst, Const(2), Const(3))])
        fold_constants(function)
        instr = function.entry.instrs[0]
        assert isinstance(instr, Copy)
        assert instr.src == Const(5)

    def test_folds_constant_condbranch(self):
        function = Function("f")
        builder = FunctionBuilder(function)
        entry = builder.start_block("entry")
        then_block = builder.new_block("t")
        else_block = builder.new_block("e")
        builder.cond_branch(Const(1), then_block, else_block)
        for block in (then_block, else_block):
            builder.position_at(block)
            builder.ret(Const(0))
        fold_constants(function)
        assert isinstance(entry.instrs[-1], Branch)
        assert entry.instrs[-1].target == then_block.label


class TestCopyProp:
    def test_propagates_constant_through_copy(self):
        function = Function("f")
        a = function.new_vreg()
        b = function.new_vreg()
        function = single_block_function([
            Copy(a, Const(7)),
            Binary("add", b, a, Const(1)),
        ])
        propagate_copies(function)
        assert function.entry.instrs[1].lhs == Const(7)

    def test_redefinition_kills_mapping(self):
        function = Function("f")
        a = function.new_vreg()
        b = function.new_vreg()
        c = function.new_vreg()
        function = single_block_function([
            Copy(a, Const(7)),
            Copy(a, Const(9)),
            Binary("add", b, a, Const(0)),
            Copy(c, b),
        ])
        propagate_copies(function)
        assert function.entry.instrs[2].lhs == Const(9)

    def test_stale_source_mapping_invalidated(self):
        function = Function("f")
        a = function.new_vreg()
        b = function.new_vreg()
        c = function.new_vreg()
        function = single_block_function([
            Copy(b, a),          # b -> a
            Copy(a, Const(1)),   # a redefined: b must NOT become 1
            Copy(c, b),
        ])
        propagate_copies(function)
        assert function.entry.instrs[2].src == a or \
            function.entry.instrs[2].src == b
        assert function.entry.instrs[2].src != Const(1)


class TestDce:
    def test_removes_unused_pure_instruction(self):
        function = Function("f")
        dead = function.new_vreg()
        function = single_block_function(
            [Binary("add", dead, Const(1), Const(2))])
        removed = eliminate_dead_code(function)
        assert removed == 1
        assert len(function.entry.instrs) == 1  # just the return

    def test_removes_chains(self):
        function = Function("f")
        a = function.new_vreg()
        b = function.new_vreg()
        function = single_block_function([
            Copy(a, Const(1)),
            Binary("add", b, a, Const(2)),
        ])
        assert eliminate_dead_code(function) == 2

    def test_keeps_live_instruction(self):
        function = Function("f")
        a = function.new_vreg()
        function = single_block_function([Copy(a, Const(1))])
        function.entry.instrs[-1] = Return(a)
        assert eliminate_dead_code(function) == 0

    def test_keeps_input_reads(self):
        # Removing an Input would shift all later reads.
        module = compile_to_ir("""
        int main() {
          int unused = input();
          print(input());
          return 0;
        }
        """)
        from repro.opt.pipeline import optimize_module
        from repro.ir import run_module
        optimize_module(module)
        assert run_module(module, [10, 20]).output == [20]


class TestStrength:
    def test_mul_power_of_two_becomes_shift(self):
        function = Function("f")
        dst = function.new_vreg()
        src = function.new_vreg()
        function = single_block_function(
            [Binary("mul", dst, src, Const(8))])
        reduce_strength(function)
        instr = function.entry.instrs[0]
        assert instr.op == "shl"
        assert instr.rhs == Const(3)

    def test_mul_by_zero_becomes_zero(self):
        function = Function("f")
        dst = function.new_vreg()
        src = function.new_vreg()
        function = single_block_function(
            [Binary("mul", dst, src, Const(0))])
        reduce_strength(function)
        instr = function.entry.instrs[0]
        assert isinstance(instr, Copy)
        assert instr.src == Const(0)

    def test_div_by_power_of_two_not_reduced(self):
        # Signed division differs from arithmetic shift for negatives.
        function = Function("f")
        dst = function.new_vreg()
        src = function.new_vreg()
        function = single_block_function(
            [Binary("div", dst, src, Const(4))])
        reduce_strength(function)
        assert function.entry.instrs[0].op == "div"

    def test_add_zero_removed(self):
        function = Function("f")
        dst = function.new_vreg()
        src = function.new_vreg()
        function = single_block_function(
            [Binary("add", dst, src, Const(0))])
        reduce_strength(function)
        assert isinstance(function.entry.instrs[0], Copy)


class TestSimplifyCfg:
    def test_removes_unreachable_blocks(self):
        module = compile_to_ir("""
        int main() {
          return 1;
          print(999);
          return 2;
        }
        """)
        function = module.function("main")
        simplify_cfg(function)
        labels = {b.label for b in function.blocks}
        assert len(labels) >= 1
        # Everything remaining is reachable from the entry.
        reachable = {function.entry.label}
        frontier = [function.entry.label]
        while frontier:
            block = function.block(frontier.pop())
            for successor in block.successors():
                if successor not in reachable:
                    reachable.add(successor)
                    frontier.append(successor)
        assert labels == reachable

    def test_merges_straightline_chain(self):
        module = compile_to_ir(
            "int main() { int x = 1; if (x) { x = 2; } print(x); "
            "return 0; }")
        from repro.opt.pipeline import optimize_module
        optimize_module(module)
        # Constant condition folds, chain merges: one block remains.
        assert len(module.function("main").blocks) == 1
