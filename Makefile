PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint verify-smoke bench bench-quick check

# Tier-1: lint, the quick perf gates (mix speedup, population
# incremental-link speedup, pool-vs-serial wall clock), a static-verify
# smoke over the representative workload trio, then the full pytest
# suite — so a taxonomy, perf or verifier regression fails the default
# flow, not just the full bench.
test: lint bench-quick verify-smoke
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) tools/lint_errors.py

# Static verifier + NOP-transparency smoke: three workloads, both paper
# configs (no --p/--range = uniform-50% and profile-guided 0-30%).
verify-smoke:
	$(PYTHON) -m repro.cli verify 429.mcf 462.libquantum 470.lbm \
		--variants 2

bench:
	$(PYTHON) benchmarks/bench_runtime.py

bench-quick:
	$(PYTHON) benchmarks/bench_runtime.py --quick \
		--output BENCH_runtime_quick.json

check:
	$(PYTHON) benchmarks/check_campaign.py --quick
