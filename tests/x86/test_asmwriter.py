"""Disassembly pretty-printer tests."""

from repro.x86.asmwriter import format_instr, format_listing, format_operand
from repro.x86.decoder import decode_all
from repro.x86.instructions import Imm, Instr, Label, Mem, Rel
from repro.x86.registers import EAX, EBP, EBX, ECX


class TestOperands:
    def test_register(self):
        assert format_operand(EAX) == "eax"

    def test_immediate(self):
        assert format_operand(Imm(-5)) == "-5"

    def test_relative(self):
        assert format_operand(Rel(16, 8)) == "$+16"
        assert format_operand(Rel(-3, 32)) == "$-3"

    def test_label(self):
        assert format_operand(Label("main")) == "main"

    def test_memory_base_only(self):
        assert format_operand(Mem(base=EBX)) == "dword [ebx]"

    def test_memory_base_disp(self):
        assert format_operand(Mem(base=EBP, disp=-4)) == "dword [ebp - 4]"

    def test_memory_scaled_index(self):
        text = format_operand(Mem(base=EAX, index=ECX, scale=4, disp=8))
        assert text == "dword [eax + ecx*4 + 8]"

    def test_memory_absolute(self):
        assert format_operand(Mem(disp=0x1000)) == "dword [4096]"

    def test_memory_symbol(self):
        assert "table" in format_operand(Mem(symbol="table", base=EAX))


class TestInstructions:
    def test_plain(self):
        assert format_instr(Instr("add", EAX, Imm(1))) == "add eax, 1"

    def test_no_operands(self):
        assert format_instr(Instr("ret")) == "ret"

    def test_indirect_branches_display_as_jmp_call(self):
        assert format_instr(Instr("jmp_reg", EAX)) == "jmp eax"
        assert format_instr(Instr("call_reg", EAX)) == "call eax"

    def test_address_prefix(self):
        instr = Instr("ret")
        instr.encoding = b"\xc3"
        instr.size = 1
        line = format_instr(instr, address=0x08048000)
        assert line.startswith("08048000:")
        assert "c3" in line
        assert line.endswith("ret")


def test_listing_of_decoded_stream():
    data = bytes.fromhex("5589e55dc3")
    instrs = decode_all(data)
    listing = format_listing(instrs, base_address=0x100)
    lines = listing.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("00000100:")
    assert "push ebp" in lines[0]
    assert "ret" in lines[-1]
