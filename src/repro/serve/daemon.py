"""The variant distribution daemon (diversification-as-a-service).

A long-running asyncio TCP server implementing the paper's
"compile once, diversify many" model at serving scale: a request names
(program, config, user) and receives a per-user unique, statically
verified variant description. The expensive pipeline stages are paid
exactly once per (program, config) pair —

- the parent compiles/profiles the program once
  (:class:`ProgramState`), predicts the config's overhead analytically
  (:func:`repro.sim.costs.predict_overhead` — zero execution, attached
  to every response), and ships the pickled lowered unit to shard
  workers;
- each shard (a single-process pool, sticky by ``seed % shards``)
  compiles its LinkPlan + TransparencyProver once and then serves each
  request with pure per-variant work: ``diversify + apply() +
  stream-verify``, ~9 ms on the reference host;
- repeat requests hit the in-memory response memo (micro-seconds) or
  the on-disk artifact cache (skips link *and* verify).

Flow control is a bounded in-flight count: past
``REPRO_SERVE_QUEUE_DEPTH`` the daemon answers with a typed
``serve.overloaded`` rejection (the HTTP-429 analogue) instead of
queueing unboundedly — clients back off, the event loop stays live, and
``stats`` stays answerable under overload.

Asyncio discipline: the event loop never blocks. CPU work runs in shard
pools via ``run_in_executor``; parent-side program builds run in the
default thread executor under a lock (the trace-span stack is
process-global, so builds are serialized). The lint (check 5 in
``tools/lint_errors.py``) forbids ``time.sleep`` and sync pool reads
inside this package's async functions.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

from repro.artifacts import CACHE_VERSION
from repro.core.config import PAPER_CONFIGS, DiversificationConfig
from repro.errors import ServeError, ServeOverloadedError
from repro.obs import metrics
from repro.obs.knobs import knob_value, validate_knob_value
from repro.pipeline import ProgramBuild
from repro.serve import workers as shard_workers
from repro.serve.protocol import (
    MAX_LINE, decode_message, encode_message, error_payload, user_seed,
)
from repro.sim.costs import predict_overhead
from repro.workloads.registry import get_workload

#: Configurations the daemon serves by label: the paper's five NOP
#: configs plus one §6 transform config — the latter is not
#: NOP-transparent, so it is gated by the generalized equivalence proof
#: (:mod:`repro.analysis.equivalence`) and symbolicated exactly through
#: the proof's generalized address map.
SERVE_CONFIGS = dict(PAPER_CONFIGS)
SERVE_CONFIGS["30%+sec6"] = DiversificationConfig.uniform(
    0.3, basic_block_shifting=True)

_UNSET = object()


class ProgramState:
    """Parent-side per-(program, config) state, built once.

    Owns everything request handling needs without touching the
    pipeline again: the overhead prediction, the pickled unit for shard
    adoption, and a pre-hashed cache-key prefix so the per-request
    :func:`repro.artifacts.variant_key` digest costs two hash updates
    instead of re-serializing the profile every time.
    """

    def __init__(self, program, config_label):
        workload = get_workload(program)
        config = SERVE_CONFIGS[config_label]
        build = ProgramBuild(workload.source, workload.name)
        profile = (build.profile(workload.train_input)
                   if config.requires_profile else None)
        baseline = build.link_baseline()
        counts = build.execution_counts(workload.ref_input)
        self.program = program
        self.config_label = config_label
        self.config = config
        self.build = build
        self.baseline_identity = baseline.identity_hash()
        self.overhead = predict_overhead(baseline, build.unit, counts,
                                         config, profile)
        self.unit_blob = build.unit_blob()
        self.profile_json = (profile.to_json()
                             if profile is not None else None)
        # Identical construction to artifacts.variant_key: the digest
        # prefix covers everything up to (not including) the seed, and
        # the profile part is pre-encoded; per request we copy the
        # prefix and feed the remaining two parts.
        prefix = hashlib.sha256()
        for part in (f"v{CACHE_VERSION}", workload.source, workload.name,
                     str(build.opt_level), repr(config)):
            encoded = part.encode("utf-8")
            prefix.update(len(encoded).to_bytes(8, "little"))
            prefix.update(encoded)
        self._key_prefix = prefix
        self._profile_part = (self.profile_json
                              if self.profile_json is not None
                              else "<no-profile>").encode("utf-8")

    def cache_key(self, seed):
        """``variant_key(...)`` for one seed, from the hashed prefix."""
        digest = self._key_prefix.copy()
        seed_part = str(seed).encode("utf-8")
        digest.update(len(seed_part).to_bytes(8, "little"))
        digest.update(seed_part)
        digest.update(len(self._profile_part).to_bytes(8, "little"))
        digest.update(self._profile_part)
        return digest.hexdigest()


class VariantServer:
    """The serve daemon: request queue, shard pools, memo, endpoints."""

    def __init__(self, *, host="127.0.0.1", port=None, shards=None,
                 queue_depth=None, verify_mode=_UNSET, memo_size=None,
                 cache_root=_UNSET, programs=()):
        self.host = host
        self.port = port if port is not None else knob_value(
            "REPRO_SERVE_PORT")
        requested = (shards if shards is not None
                     else knob_value("REPRO_SERVE_SHARDS"))
        self.shards = requested or (os.cpu_count() or 1)
        self.queue_depth = (queue_depth if queue_depth is not None
                            else knob_value("REPRO_SERVE_QUEUE_DEPTH"))
        self.verify_mode = (knob_value("REPRO_SERVE_VERIFY")
                            if verify_mode is _UNSET else
                            validate_knob_value("REPRO_SERVE_VERIFY",
                                                verify_mode))
        self.memo_size = (memo_size if memo_size is not None
                          else knob_value("REPRO_SERVE_MEMO"))
        self.cache_root = (knob_value("REPRO_CACHE_DIR")
                           if cache_root is _UNSET else cache_root)
        self._preload = list(programs)
        self._states = {}
        self._adopted = set()
        self._memo = OrderedDict()
        self._inflight = 0
        self._pools = []
        self._server = None
        self._build_lock = None
        self._adopt_locks = {}
        self._started = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Create shard pools, preload programs, bind the socket."""
        self._build_lock = asyncio.Lock()
        self._pools = [ProcessPoolExecutor(max_workers=1)
                       for _ in range(self.shards)]
        for program, config_label in self._preload:
            state = await self._program_state(program, config_label)
            for shard in range(self.shards):
                await self._ensure_adopted(state, shard)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=MAX_LINE)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    async def close(self):
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        for pool in self._pools:
            pool.shutdown(wait=False, cancel_futures=True)
        self._pools = []

    # -- program/shard state -------------------------------------------------

    async def _program_state(self, program, config_label):
        """The (program, config) state, built on first use.

        Builds run in the default thread executor so the loop keeps
        answering pings/stats, serialized by one lock because the trace
        span stack is process-global.
        """
        if config_label not in SERVE_CONFIGS:
            raise ServeError(
                f"unknown config {config_label!r}; choose one of "
                f"{sorted(SERVE_CONFIGS)}",
                context={"config": config_label,
                         "choices": sorted(SERVE_CONFIGS)})
        key = (program, config_label)
        state = self._states.get(key)
        if state is not None:
            return state
        loop = asyncio.get_running_loop()
        async with self._build_lock:
            state = self._states.get(key)
            if state is None:
                state = await loop.run_in_executor(
                    None, ProgramState, program, config_label)
                self._states[key] = state
                metrics.inc("serve.programs_loaded")
        return state

    async def _ensure_adopted(self, state, shard):
        """Ship ``state`` to one shard process exactly once."""
        key = (state.program, state.config_label)
        if (shard, key) in self._adopted:
            return
        lock = self._adopt_locks.setdefault((shard, key), asyncio.Lock())
        async with lock:
            if (shard, key) in self._adopted:
                return
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                self._pools[shard], shard_workers.shard_adopt, key,
                state.unit_blob, state.config, state.profile_json,
                self.cache_root, state.baseline_identity)
            self._adopted.add((shard, key))
            metrics.inc("serve.shard_adoptions")

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader, writer):
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_message(error_payload(ServeError(
                        "request line too long",
                        context={"limit": MAX_LINE}))))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._respond(line)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _respond(self, line):
        began = time.monotonic()
        op = None
        try:
            request = decode_message(line)
            op = request.get("op")
            response = await self._dispatch(op, request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # every failure leaves typed, not torn
            if isinstance(exc, ServeOverloadedError):
                metrics.inc("serve.rejected")
            else:
                metrics.inc("serve.errors")
            response = error_payload(exc)
        elapsed_ms = (time.monotonic() - began) * 1000.0
        if op in ("variant", "symbolicate"):
            metrics.observe(f"serve.{op}_ms", elapsed_ms)
        if isinstance(response, dict):
            response.setdefault("latency_ms", round(elapsed_ms, 3))
        return response

    async def _dispatch(self, op, request):
        metrics.inc("serve.requests")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return self._stats_payload()
        if op == "variant":
            return await self._op_variant(request)
        if op == "symbolicate":
            return await self._op_symbolicate(request)
        raise ServeError(
            f"unknown op {op!r}",
            context={"op": op,
                     "choices": ["variant", "symbolicate", "stats",
                                 "ping"]})

    def _require(self, request, field):
        value = request.get(field)
        if not isinstance(value, str) or not value:
            raise ServeError(f"request field {field!r} must be a "
                             f"non-empty string",
                             context={"field": field})
        return value

    @contextlib.contextmanager
    def _admitted(self):
        """Bounded-queue admission: reject, never queue unboundedly."""
        if self._inflight >= self.queue_depth:
            raise ServeOverloadedError(
                "request queue is full; back off and retry",
                context={"queue_depth": self.queue_depth,
                         "inflight": self._inflight})
        self._inflight += 1
        try:
            yield
        finally:
            self._inflight -= 1

    # -- endpoints -----------------------------------------------------------

    async def _op_variant(self, request):
        program = self._require(request, "program")
        config_label = self._require(request, "config")
        user = self._require(request, "user")
        seed = user_seed(program, config_label, user)
        memo_key = (program, config_label, seed)
        memo_hit = self._memo.get(memo_key)
        if memo_hit is not None:
            # Memo hits bypass admission: they cost microseconds and
            # must stay servable while the cold path is saturated.
            self._memo.move_to_end(memo_key)
            metrics.inc("serve.memo_hits")
            response = dict(memo_hit)
            response["cached"] = True
            response["source"] = "memo"
            return response
        with self._admitted():
            state = await self._program_state(program, config_label)
            shard = seed % self.shards
            await self._ensure_adopted(state, shard)
            cache_key = state.cache_key(seed)
            loop = asyncio.get_running_loop()
            payload, delta = await loop.run_in_executor(
                self._pools[shard], shard_workers.shard_variant,
                (program, config_label), user, cache_key,
                self.verify_mode)
            metrics.merge_delta(delta)
            metrics.inc("serve.variants_served")
            response = {
                "ok": True,
                "op": "variant",
                "program": program,
                "config": config_label,
                "user": user,
                "seed": payload["seed"],
                "variant": {
                    "identity": payload["identity"],
                    "cache_key": cache_key,
                    "text_bytes": payload["text_bytes"],
                    "inserted_nops": payload["inserted_nops"],
                    "verified": payload["verified"],
                },
                "overhead": state.overhead,
                "cached": payload["from_cache"],
                "source": ("artifact-cache" if payload["from_cache"]
                           else "built"),
                "shard": shard,
            }
            if self.memo_size:
                self._memo[memo_key] = {
                    key: value for key, value in response.items()
                    if key != "latency_ms"}
                while len(self._memo) > self.memo_size:
                    self._memo.popitem(last=False)
            return response

    async def _op_symbolicate(self, request):
        program = self._require(request, "program")
        config_label = self._require(request, "config")
        user = self._require(request, "user")
        addresses = request.get("addresses")
        if (not isinstance(addresses, list)
                or not all(isinstance(a, int) for a in addresses)):
            raise ServeError(
                "request field 'addresses' must be a list of integers",
                context={"field": "addresses"})
        with self._admitted():
            state = await self._program_state(program, config_label)
            seed = user_seed(program, config_label, user)
            shard = seed % self.shards
            await self._ensure_adopted(state, shard)
            loop = asyncio.get_running_loop()
            payload, delta = await loop.run_in_executor(
                self._pools[shard], shard_workers.shard_symbolicate,
                (program, config_label), user, addresses)
            metrics.merge_delta(delta)
            metrics.inc("serve.symbolications")
            return {
                "ok": True,
                "op": "symbolicate",
                "program": program,
                "config": config_label,
                "user": user,
                "seed": payload["seed"],
                "symbolicatable": payload["symbolicatable"],
                "reason": payload.get("reason"),
                "frames": payload["frames"],
            }

    def _stats_payload(self):
        counters = metrics.counters()
        histograms = metrics.histograms()
        return {
            "ok": True,
            "op": "stats",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "queue": {"depth": self.queue_depth,
                      "inflight": self._inflight},
            "shards": {"count": self.shards,
                       "adoptions": sorted(
                           f"{shard}:{key[0]}/{key[1]}"
                           for shard, key in self._adopted)},
            "memo": {"size": len(self._memo),
                     "capacity": self.memo_size},
            "verify_mode": self.verify_mode or "off",
            "programs": sorted(f"{p}/{c}" for p, c in self._states),
            "counters": {name: value for name, value in
                         sorted(counters.items())
                         if name.startswith(("serve.", "cache.",
                                             "linkplan.", "nops."))},
            "latency": {name: stats for name, stats in
                        sorted(histograms.items())
                        if name.startswith("serve.")},
        }


async def run_server(server, *, port_file=None, announce=print):
    """Start ``server`` and run until cancelled (the CLI entry body)."""
    await server.start()
    if port_file:
        with open(port_file, "w") as handle:
            handle.write(str(server.port))
    announce(f"repro.serve listening on {server.host}:{server.port} "
             f"({server.shards} shard(s), queue depth "
             f"{server.queue_depth}, verify "
             f"{server.verify_mode or 'off'})")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()


def main(*, host="127.0.0.1", port=None, programs=(), port_file=None,
         announce=print):
    """Blocking daemon entry point (``repro-diversify serve``)."""
    server = VariantServer(host=host, port=port, programs=programs)
    try:
        asyncio.run(run_server(server, port_file=port_file,
                               announce=announce))
    except KeyboardInterrupt:
        pass
    return 0
