#!/usr/bin/env python
"""Composing diversifying transformations (paper §6).

The paper's discussion section proposes stacking orthogonal
transformations on top of profile-guided NOP insertion. This example
builds one program four ways and compares, for each ladder step:

- binary size (NOPs grow it; substitution and reordering do not),
- estimated runtime overhead,
- gadgets surviving at their original offsets (Survivor).

Run:  python examples/composed_defenses.py
"""

from repro import DiversificationConfig, ProgramBuild
from repro.core.probability import LogProfileProbability
from repro.reporting import format_table
from repro.security.gadgets import find_gadgets
from repro.security.survivor import surviving_gadgets

SOURCE = """
int table[128];

int mix(int a, int b) {
  return ((a * 31) ^ b) & 16777215;
}

int main() {
  int n = input();
  int seed = input();
  int x = seed;
  int i;
  for (i = 0; i < n; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    table[i & 127] = mix(x, table[(i + 7) & 127]);
  }
  int acc = 0;
  for (i = 0; i < 128; i++) { acc = mix(acc, table[i]); }
  print(acc);
  return 0;
}
"""

TRAIN = (200, 3)
REF = (2000, 9)


def config(**extras):
    return DiversificationConfig(
        probability_model=LogProfileProbability(0.0, 0.30), **extras)


LADDER = (
    ("NOP insertion only", config()),
    ("+ encoding substitution", config(encoding_substitution=True)),
    ("+ basic-block shifting", config(encoding_substitution=True,
                                      basic_block_shifting=True)),
    ("+ function reordering", config(encoding_substitution=True,
                                     basic_block_shifting=True,
                                     function_reordering=True)),
)


def main():
    build = ProgramBuild(SOURCE, "composed")
    baseline = build.link_baseline()
    profile = build.profile(TRAIN)
    counts = build.execution_counts(REF)
    base_cycles = build.cycles(baseline, counts)
    reference = build.run_reference(REF)
    total_gadgets = len(find_gadgets(baseline.text))

    rows = []
    for label, cfg in LADDER:
        sizes = []
        overheads = []
        survivors = []
        for seed in range(5):
            variant = build.link_variant(cfg, seed, profile)
            check = build.simulate(variant, REF)
            assert check.output == reference.output, label
            sizes.append(len(variant.text))
            overheads.append(build.cycles(variant, counts)
                             / base_cycles - 1)
            count, _offsets = surviving_gadgets(baseline.text,
                                                variant.text)
            survivors.append(count)
        rows.append((label,
                     sum(sizes) // len(sizes) - len(baseline.text),
                     100 * sum(overheads) / len(overheads),
                     sum(survivors) / len(survivors)))

    print(f"baseline: {len(baseline.text)} bytes, {total_gadgets} "
          "gadgets\n")
    print(format_table(
        ("transformations", "text growth (B)", "overhead %",
         "mean survivors"),
        rows,
        title="Composing §6 transformations (5 seeds each; every "
              "variant's output verified identical)"))
    print("\nSubstitution and reordering add diversity with zero size "
          "and negligible runtime cost — exactly why §6 calls the "
          "techniques orthogonal.")


if __name__ == "__main__":
    main()
