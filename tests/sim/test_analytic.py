"""Analytic-vs-measured equivalence: the cornerstone of the fast harness.

The Figure-4 benchmark sweep relies on the analytic engine producing
exactly what per-block cost accounting over a simulated run would, for
both baseline and diversified binaries.
"""

import pytest

from repro.core.config import PAPER_CONFIGS
from repro.pipeline import ProgramBuild
from repro.sim.analytic import (
    block_counts_from_profile, block_counts_from_sim, estimate_cycles,
)
from tests.conftest import FIB_SOURCE, HOTCOLD_SOURCE

SOURCES = {
    "fib": (FIB_SOURCE, (9,)),
    "hotcold": (HOTCOLD_SOURCE, (300,)),
}


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_ir_counts_equal_machine_counts(name):
    source, inputs = SOURCES[name]
    build = ProgramBuild(source, name)
    binary = build.link_baseline()
    sim = build.simulate(binary, inputs, count_addresses=True)

    machine_counts = block_counts_from_sim(binary, sim.addr_counts)
    ir_counts = build.execution_counts(inputs)

    for block_id, count in machine_counts.items():
        assert ir_counts.get(block_id, 0) == count, block_id


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_analytic_cycles_match_simulated_attribution(name):
    source, inputs = SOURCES[name]
    build = ProgramBuild(source, name)
    binary = build.link_baseline()
    sim = build.simulate(binary, inputs, count_addresses=True)

    from_machine = estimate_cycles(
        binary, block_counts_from_sim(binary, sim.addr_counts))
    from_ir = estimate_cycles(binary, build.execution_counts(inputs))
    assert from_machine == pytest.approx(from_ir)


@pytest.mark.parametrize("label", ["50%", "0-30%"])
def test_analytic_matches_on_diversified_binaries(label):
    build = ProgramBuild(FIB_SOURCE, "fib")
    config = PAPER_CONFIGS[label]
    profile = build.profile((7,)) if config.requires_profile else None
    variant = build.link_variant(config, seed=3, profile=profile)
    sim = build.simulate(variant, (9,), count_addresses=True)

    from_machine = estimate_cycles(
        variant, block_counts_from_sim(variant, sim.addr_counts))
    from_ir = estimate_cycles(variant, build.execution_counts((9,)))
    assert from_machine == pytest.approx(from_ir)


def test_overhead_positive_and_profile_guided_smaller():
    build = ProgramBuild(FIB_SOURCE, "fib")
    naive = build.overhead(PAPER_CONFIGS["50%"], seed=1, ref_input=(9,))
    guided = build.overhead(PAPER_CONFIGS["0-30%"], seed=1,
                            train_input=(7,), ref_input=(9,))
    assert naive > 0
    assert 0 <= guided < naive


def test_block_counts_from_profile_includes_runtime_and_edges():
    build = ProgramBuild(FIB_SOURCE, "fib")
    profile = build.profile((9,))
    counts = block_counts_from_profile(build.module, profile)
    assert counts[("_start", "body")] == 1
    assert counts[("__print_int", "body")] == 4  # fib prints four values
