"""Shared fixtures for the test suite."""

import pytest

from repro.pipeline import ProgramBuild

#: A small but representative program: recursion, arrays, loops, division,
#: input/output, short-circuit logic.
FIB_SOURCE = """
int cache[64];

int fib(int n) {
  if (n < 2) { return n; }
  if (cache[n] != 0) { return cache[n]; }
  int r = fib(n - 1) + fib(n - 2);
  cache[n] = r;
  return r;
}

int main() {
  int n = input();
  int i;
  int total = 0;
  for (i = 0; i < n; i++) {
    total += fib(i);
  }
  print(total);
  print(total % 7);
  print(total / 3);
  if (total > 10 && n > 2) { print(1); } else { print(0); }
  return total;
}
"""

#: A loop-heavy program with a clear hot/cold split for profiling tests.
HOTCOLD_SOURCE = """
int data[128];

void cold_path(int x) {
  print(x * 1000);
}

int main() {
  int n = input();
  int i;
  int acc = 0;
  for (i = 0; i < n; i++) {
    data[i & 127] = i * 3;
    acc = (acc + data[(i * 5) & 127]) & 65535;
  }
  if (acc == 123456789) {
    cold_path(acc);
  }
  print(acc);
  return 0;
}
"""


@pytest.fixture(scope="session")
def fib_build():
    return ProgramBuild(FIB_SOURCE, "fib")


@pytest.fixture(scope="session")
def hotcold_build():
    return ProgramBuild(HOTCOLD_SOURCE, "hotcold")
