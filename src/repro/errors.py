"""Shared exception hierarchy for the repro package.

Every error carries two machine-readable attributes on top of its
human-readable message:

- ``code`` — a stable dotted identifier (``"sim.fault"``,
  ``"profile.invalid"``, ...) that tooling can match on without parsing
  message text. Each class has a default; a raise site may override it.
- ``context`` — a dict of structured fields describing the failure
  (faulting address, offending value, call-stack snapshot, ...). The
  fault-injection campaign in :mod:`repro.check.faults` asserts that
  injected faults surface as these typed errors with populated context,
  never as bare builtin exceptions.

Validation errors that historically surfaced as ``ValueError`` (bad
probability fractions, malformed operands, unknown IR ops) keep
``ValueError`` in their bases so existing ``except ValueError`` callers
continue to work.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    #: Stable machine-readable identifier; subclasses override.
    code = "repro.error"

    def __init__(self, message="", *, context=None, code=None):
        super().__init__(message)
        self.context = dict(context) if context else {}
        if code is not None:
            self.code = code

    def with_context(self, **fields):
        """Attach extra context fields; returns self for chaining."""
        self.context.update(fields)
        return self


class MincSyntaxError(ReproError):
    """Raised by the MinC lexer/parser on malformed source."""

    code = "minc.syntax"

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}",
                         context={"line": line, "column": column})
        self.line = line
        self.column = column


class MincSemanticError(ReproError):
    """Raised by semantic analysis (undefined names, arity errors, ...)."""

    code = "minc.semantic"


class IRError(ReproError):
    """Raised when an IR module violates a structural invariant."""

    code = "ir.invalid"


class IRValidationError(IRError, ValueError):
    """Raised when an IR instruction is constructed with a bad operator."""

    code = "ir.operator"


class LoweringError(ReproError):
    """Raised when the backend cannot lower an IR construct."""

    code = "lower.failed"


class EncodingError(ReproError):
    """Raised when an x86 instruction cannot be encoded."""

    code = "x86.encode"


class OperandError(EncodingError, ValueError):
    """Raised when an x86 operand is constructed with invalid fields."""

    code = "x86.operand"


class DecodingError(ReproError):
    """Raised when bytes cannot be decoded as an x86 instruction."""

    code = "x86.decode"


class LinkError(ReproError):
    """Raised by the linker (duplicate/undefined symbols, layout issues)."""

    code = "link.failed"


class PlanMismatchError(LinkError):
    """A precomputed link plan does not fit the unit it was applied to.

    Raised by :meth:`repro.backend.linkplan.LinkPlan.apply` when the
    variant's instruction stream is not "the planned stream plus inserted
    NOPs" — e.g. a §6 config rewrote encodings, reordered functions, or
    spliced in new branches. Callers fall back to a full
    :func:`repro.backend.linker.link`.
    """

    code = "link.plan_mismatch"


class SimulatorError(ReproError):
    """Raised by the x86 simulator on machine faults."""

    code = "sim.error"


class MachineFault(SimulatorError):
    """A fault during simulated execution (bad access, bad decode, HLT).

    ``context`` carries the fault site: ``eip``, ``step``, the decoded
    instruction when available, a ``call_stack`` snapshot, and — for
    memory faults — the offending ``address`` and ``access`` kind.
    """

    code = "sim.fault"


class SimulationLimitExceeded(SimulatorError):
    """The simulator's step fuel ran out (runaway-binary guard)."""

    code = "sim.limit"


class BatchParityError(SimulatorError):
    """The batch engine's derived result disagreed with a real run.

    Raised only in ``REPRO_SIM_BATCH=check`` mode, where every
    analytically derived variant result is cross-checked against a full
    per-variant simulation. A mismatch means the batch engine's
    soundness argument was violated — a bug in the engine or the
    transparency prover, never in the variant — so it surfaces as a
    typed error, not a silent wrong number. ``context`` names the first
    diverging observable and both values.
    """

    code = "sim.batch_parity"


class ProfileError(ReproError):
    """Raised on malformed or mismatched profile data."""

    code = "profile.invalid"


class ConfigError(ReproError, ValueError):
    """Raised on invalid diversification configuration values."""

    code = "config.invalid"


class WorkloadError(ReproError):
    """Raised when a named workload does not exist or fails to build."""

    code = "workload.unknown"


class DivergenceError(ReproError):
    """A diversified variant observably diverged from its baseline.

    Raised by :mod:`repro.check.differential` when outputs, exit codes or
    instruction-count bounds disagree — the semantics-preservation
    invariant the paper relies on. ``context`` names the first diverging
    observable and both values.
    """

    code = "check.divergence"


class StaticAnalysisError(ReproError):
    """Raised when :mod:`repro.analysis` cannot analyze a binary at all
    (malformed input, unknown function, unusable CFG)."""

    code = "verify.error"


class VerificationError(StaticAnalysisError):
    """A linked binary failed static verification.

    Raised by :func:`repro.analysis.passes.require_verified` (and the
    ``REPRO_STATIC_VERIFY`` post-link gate in :mod:`repro.pipeline`) when
    any verifier pass produced findings. ``context`` carries the binary's
    name, the finding count, and the per-code breakdown; the individual
    findings ride in ``context["findings"]`` as ``describe()`` strings.
    """

    code = "verify.failed"


class TransparencyError(VerificationError):
    """A variant is not "baseline + NOP insertions + recomputed offsets".

    Raised when :mod:`repro.analysis.transparency` is asked to *enforce*
    (rather than report) the NOP-transparency property and the proof
    fails.
    """

    code = "verify.transparency"


class EquivalenceError(VerificationError):
    """A variant could not be proven semantically equivalent to its
    baseline.

    Raised when :mod:`repro.analysis.equivalence` is asked to *enforce*
    (rather than report) semantics preservation under the full §6
    transform set — NOP insertion composed with encoding substitution,
    basic-block shifting and function reordering — and the proof fails.
    ``context["findings"]`` names the first unprovable sites.
    """

    code = "verify.equivalence"


class ServeError(ReproError):
    """A variant-serving request could not be satisfied.

    Raised (and serialized onto the wire as ``{"error": {"code": ...}}``)
    by :mod:`repro.serve` for malformed requests, unknown programs or
    configs, and verification failures of a to-be-served variant.
    """

    code = "serve.error"


class ServeOverloadedError(ServeError):
    """The daemon's bounded request queue is full (HTTP-429 analogue).

    Carries the queue depth and current in-flight count in ``context``;
    clients should back off and retry.
    """

    code = "serve.overloaded"


#: Every stable finding code the static verifier can emit
#: (:class:`repro.analysis.cfg.Finding` instances carry one of these).
#: Tooling that folds verifier output into reports should match on these
#: rather than on message text.
VERIFY_FINDING_CODES = frozenset({
    "verify.decode",        # reachable bytes do not decode
    "verify.target",        # branch/call/fallthrough target is not an
                            # instruction boundary inside .text
    "verify.overlap",       # two recovered instructions share bytes
    "verify.unreachable",   # text bytes no recovery root reaches
    "verify.reloc",         # relocated disp32 outside the data segment
    "verify.roundtrip",     # re-encoding a decoded instruction does not
                            # reproduce the original bytes
    "verify.stack",         # stack-height imbalance / below-frame access
    "verify.defuse",        # register (or flags) used before any def
    "verify.transparency.stream",  # variant stream is not baseline + NOPs
    "verify.transparency.nop",     # an insertion is not a Table-1 NOP
    "verify.transparency.branch",  # branch target not recomputed correctly
    "verify.transparency.disp",    # data disp32 not shifted by the
                                   # data-segment delta
    "verify.transparency.data",    # data image/symbols differ beyond the
                                   # segment shift
    "verify.equivalence.layout",   # function set/ranges do not tile the
                                   # text, or a fallthrough boundary
                                   # breaks under reordering
    "verify.equivalence.stream",   # a variant instruction matches no
                                   # proof dimension (not carried, not a
                                   # NOP, not a proven sled)
    "verify.equivalence.subst",    # a flipped encoding is not the dual-
                                   # ModRM byte-equivalent of its
                                   # baseline instruction
    "verify.equivalence.sled",     # an inserted sled is not provably
                                   # dead (reachable interior, bad jump,
                                   # non-NOP bytes)
    "verify.equivalence.branch",   # a branch target does not map to the
                                   # same label across the layouts
    "verify.equivalence.symbol",   # a code symbol or the entry point did
                                   # not move to its proven location
})
