"""Statically prove a variant is "baseline + NOPs + recomputed offsets".

The paper's transformation inserts Table-1 NOPs into the instruction
stream before linking; the linker then re-resolves every branch
displacement and data address around the inserted bytes. So a genuine
variant differs from its baseline in *exactly* three ways:

1. inserted instructions whose bytes are Table-1 NOP encodings
   (:mod:`repro.x86.nops`);
2. relative branch displacements recomputed so that every (baseline
   target, variant target) pair is the same *label* in both symbol
   tables — equivalently, the variant target is where the baseline
   target's code moved to;
3. absolute data displacements shifted by the data-segment delta
   (the variant's longer .text pushes ``data_base`` up).

:func:`prove_transparency` checks this two independent ways and
cross-checks them:

- **record mode** uses the linker's ``instr_records`` — the variant's
  non-NOP record sequence must pair 1:1 with baseline's (same mnemonic,
  same originating block), every inserted-NOP record's text bytes must
  be a Table-1 encoding, and every record's bytes must match the image
  (so corrupted text with stale records cannot pass);
- **byte mode** ignores all metadata and aligns the two raw byte
  streams with a two-pointer walk, consuming unmatched variant bytes
  only when they are Table-1 NOP encodings.

This is the static counterpart of :mod:`repro.check.differential`: it
covers all paths with no simulation, and unlike the dynamic check it
proves the *only* difference is the diversifying transformation.

Population-scale use goes through :class:`TransparencyProver`, which
computes everything that depends only on the baseline — the decoded
baseline stream, the baseline record/image validation, the label index
— once and reuses it for every variant of that baseline. Its
``mode="records"`` proof replaces the byte-mode walk with a coverage
check (the records must tile the text exactly); combined with the
per-record image check this pins every byte of both images, so it is a
complete proof at a fraction of the decode cost — the property the
lockstep batch engine (:mod:`repro.sim.batch`) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import Finding
from repro.errors import (
    ConfigError, DecodingError, EncodingError, TransparencyError,
)
from repro.x86.decoder import decode, decode_cached
from repro.x86.encoder import encode
from repro.x86.instructions import JCC_MNEMONICS, Imm, Instr, Mem, Rel
from repro.x86.nops import NOP_CANDIDATES, match_nop_candidate
from repro.x86.registers import Register


@dataclass
class TransparencyReport:
    """Findings and statistics from one baseline/variant proof."""

    baseline_name: str
    variant_name: str
    findings: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.findings

    def describe(self):
        status = ("transparent"
                  if self.ok else f"{len(self.findings)} finding(s)")
        return (f"{self.variant_name} vs {self.baseline_name}: {status}, "
                f"{self.stats.get('inserted_nops', 0)} inserted NOP(s)")


def _operands_match(b_instr, v_instr, delta, data_floor):
    """Non-branch operand agreement: identical, except data disp32s
    shifted by the segment delta."""
    if len(b_instr.operands) != len(v_instr.operands):
        return False
    for b_op, v_op in zip(b_instr.operands, v_instr.operands):
        if isinstance(b_op, Mem) and isinstance(v_op, Mem):
            if (b_op.base is not v_op.base or b_op.index is not v_op.index
                    or b_op.scale != v_op.scale):
                return False
            if b_op.disp >= data_floor:
                if v_op.disp - b_op.disp != delta:
                    return False
            elif v_op.disp != b_op.disp:
                return False
        elif isinstance(b_op, (Imm, Register)):
            if b_op != v_op:
                return False
        elif isinstance(b_op, Rel):
            return False  # branches are matched by target, not here
        else:
            return False
    return True


def _slice_of(binary, record):
    offset = record.address - binary.text_base
    return binary.text[offset:offset + record.size]


def _record_image_finding(binary, label):
    """First record whose bytes disagree with the image, as a Finding.

    The image must match the records byte for byte, or the records
    prove nothing about the shipped text. Incremental-plan links leave
    branch records' encodings lazy, so re-encode from the resolved
    operands when needed.

    Fast path: when the records tile the text contiguously (the common,
    well-formed case), the whole image is one concatenation of record
    encodings — a single C-level comparison instead of one slice per
    record. Any irregularity falls back to the per-record walk, which
    names the first offending record.
    """
    pieces = []
    offset = binary.text_base
    for record in binary.instr_records:
        encoding = record.instr.encoding
        if encoding is None:
            try:
                encoding = encode(record.instr)
            except EncodingError:
                break
        if record.address != offset or len(encoding) != record.size:
            break
        pieces.append(encoding)
        offset += record.size
    else:
        if b"".join(pieces) == binary.text:
            return None
    for record in binary.instr_records:
        expected = record.instr.encoding
        if expected is None:
            try:
                expected = encode(record.instr)
            except EncodingError:
                expected = None
        if _slice_of(binary, record) != expected:
            return Finding(
                "verify.transparency.stream",
                f"{label} text bytes disagree with the instruction "
                f"record ({record.mnemonic})", address=record.address)
    return None


def _coverage_finding(binary, label):
    """First gap/overlap in the records' tiling of the text, if any.

    Record mode trusts nothing outside the records themselves; this
    check closes the remaining hole — bytes *between* records — by
    requiring that the records tile the text contiguously from
    ``text_base`` to its end. Together with the per-record image check,
    every byte of the image is then pinned by a validated record.
    """
    offset = binary.text_base
    for record in binary.instr_records:
        if record.address != offset:
            return Finding(
                "verify.transparency.stream",
                f"{label} instruction records do not tile the text: "
                f"expected a record at {offset:#x}, found one at "
                f"{record.address:#x}", address=offset)
        offset += record.size
    if offset != binary.text_base + len(binary.text):
        return Finding(
            "verify.transparency.stream",
            f"{label} text has {binary.text_base + len(binary.text) - offset} "
            f"byte(s) past the last instruction record", address=offset)
    return None


def _label_index(baseline):
    """address → [labels] over the baseline's code symbols."""
    b_labels = {}
    for label, address in baseline.code_symbols.items():
        b_labels.setdefault(address, []).append(label)
    return b_labels


def _check_records(baseline, variant, findings, *, baseline_finding,
                   b_labels):
    """Record mode: align via the linker's instruction records.

    ``baseline_finding`` and ``b_labels`` are the baseline-only halves
    (record/image validation, label index), precomputed once per
    baseline by :class:`TransparencyProver` and shared across every
    variant's proof.
    """
    delta = variant.data_base - baseline.data_base
    data_floor = baseline.data_base

    if baseline_finding is not None:
        findings.append(baseline_finding)
        return 0
    variant_finding = _record_image_finding(variant, "variant")
    if variant_finding is not None:
        findings.append(variant_finding)
        return 0

    inserted = [r for r in variant.instr_records if r.is_inserted_nop]
    carried = [r for r in variant.instr_records if not r.is_inserted_nop]
    for record in inserted:
        chunk = _slice_of(variant, record)
        candidate = match_nop_candidate(chunk)
        if candidate is None or candidate.size != len(chunk):
            findings.append(Finding(
                "verify.transparency.nop",
                f"inserted instruction bytes {bytes(chunk).hex()} are "
                f"not a Table-1 NOP encoding", address=record.address))

    if len(carried) != len(baseline.instr_records):
        findings.append(Finding(
            "verify.transparency.stream",
            f"variant carries {len(carried)} non-NOP instructions, "
            f"baseline has {len(baseline.instr_records)}"))
        return len(inserted)

    for b_record, v_record in zip(baseline.instr_records, carried):
        b_instr, v_instr = b_record.instr, v_record.instr
        if (b_instr.mnemonic != v_instr.mnemonic
                or b_record.block_id != v_record.block_id):
            findings.append(Finding(
                "verify.transparency.stream",
                f"stream mismatch: baseline {b_instr!r} at "
                f"{b_record.address:#x} vs variant {v_instr!r}",
                address=v_record.address))
            continue
        if b_instr.is_relative_branch:
            b_target = (b_record.address + b_record.size
                        + b_instr.operands[0].value)
            v_target = (v_record.address + v_record.size
                        + v_instr.operands[0].value)
            if not any(variant.code_symbols.get(label) == v_target
                       for label in b_labels.get(b_target, ())):
                findings.append(Finding(
                    "verify.transparency.branch",
                    f"{b_instr.mnemonic} targets {b_target:#x} in "
                    f"baseline but {v_target:#x} in the variant, and no "
                    f"label maps one to the other",
                    address=v_record.address))
        elif not _operands_match(b_instr, v_instr, delta, data_floor):
            code = ("verify.transparency.disp"
                    if any(isinstance(op, Mem) for op in b_instr.operands)
                    else "verify.transparency.stream")
            findings.append(Finding(
                code,
                f"operands diverge beyond the data-segment shift: "
                f"baseline {b_instr!r} vs variant {v_instr!r}",
                address=v_record.address))
    return len(inserted)


def _decode_stream(text, cache=None):
    """Decode a whole text into ``([(offset, instr), ...], failure)``.

    ``failure`` is ``(offset, message)`` when the walk hit undecodable
    bytes (the stream then covers only the prefix before it). ``cache``
    is an optional offset → Instr memo — byte mode distrusts linker
    *metadata*, but memoized decoding of the same immutable bytes
    returns the same instructions, so sharing the per-binary decode
    cache with the simulator is sound.
    """
    stream = []
    offset = 0
    cache = {} if cache is None else cache
    while offset < len(text):
        try:
            instr = decode_cached(text, offset, cache)
        except DecodingError as exc:
            return stream, (offset, str(exc))
        stream.append((offset, instr))
        offset += instr.size
    return stream, None


def _check_bytes(baseline, variant, findings, *, b_stream, b_failure):
    """Byte mode: align the raw texts with no linker metadata at all.

    ``b_stream``/``b_failure`` come from :func:`_decode_stream` over the
    baseline text — the baseline is decoded once per
    :class:`TransparencyProver`, not once per variant.
    """
    delta = variant.data_base - baseline.data_base
    data_floor = baseline.data_base
    b_text, v_text = baseline.text, variant.text
    v_off = 0
    inserted = 0
    #: baseline offset -> variant offset of the NOP run preceding the
    #: corresponding instruction (= where the baseline location moved
    #: to, since insertion places NOPs after labels).
    moved_to = {}
    branch_pairs = []

    for b_off, b_instr in b_stream:
        moved_to[b_off] = v_off
        while True:
            if v_off >= len(v_text):
                findings.append(Finding(
                    "verify.transparency.stream",
                    "variant text ends before the baseline stream is "
                    "consumed", address=variant.text_base + v_off))
                return inserted
            try:
                v_instr = decode(v_text, v_off)
            except DecodingError as exc:
                findings.append(Finding(
                    "verify.transparency.stream",
                    f"variant bytes do not decode: {exc}",
                    address=variant.text_base + v_off))
                return inserted
            if (b_instr.mnemonic == v_instr.mnemonic
                    and (b_instr.is_relative_branch
                         or _operands_match(b_instr, v_instr, delta,
                                            data_floor))):
                break  # aligned: prefer the match over a NOP consume
            candidate = match_nop_candidate(v_text, v_off)
            if candidate is None:
                findings.append(Finding(
                    "verify.transparency.stream",
                    f"variant {v_instr!r} is neither the next baseline "
                    f"instruction ({b_instr!r}) nor a Table-1 NOP",
                    address=variant.text_base + v_off))
                return inserted
            inserted += 1
            v_off += candidate.size
        if b_instr.is_relative_branch:
            branch_pairs.append(
                (b_off + b_instr.size + b_instr.operands[0].value,
                 v_off + v_instr.size + v_instr.operands[0].value,
                 variant.text_base + v_off))
        v_off += v_instr.size

    if b_failure is not None:
        fail_off, message = b_failure
        findings.append(Finding(
            "verify.transparency.stream",
            f"baseline bytes do not decode: {message}",
            address=baseline.text_base + fail_off))
        return inserted

    # Trailing variant bytes must all be insertions.
    moved_to[len(b_text)] = v_off
    while v_off < len(v_text):
        candidate = match_nop_candidate(v_text, v_off)
        if candidate is None:
            findings.append(Finding(
                "verify.transparency.stream",
                "trailing variant bytes are not Table-1 NOP encodings",
                address=variant.text_base + v_off))
            return inserted
        inserted += 1
        v_off += candidate.size

    for b_target, v_target, site in branch_pairs:
        if moved_to.get(b_target) != v_target:
            expected = moved_to.get(b_target)
            expected_text = ("no aligned location"
                             if expected is None else f"{expected:#x}")
            findings.append(Finding(
                "verify.transparency.branch",
                f"branch target not recomputed: baseline offset "
                f"{b_target:#x} moved to {expected_text}, variant "
                f"branch goes to offset {v_target:#x}", address=site))
    return inserted


def _check_data_segments(baseline, variant, findings):
    """Data symbols/words must be identical modulo the base shift.

    The data-only half of :func:`_check_data`, shared with the
    equivalence prover (:mod:`repro.analysis.equivalence`), whose §6
    variants legitimately add *code* symbols (sled skip labels) and so
    run their own code-symbol check instead.
    """
    if set(baseline.data_symbols) != set(variant.data_symbols):
        findings.append(Finding(
            "verify.transparency.data",
            "baseline and variant define different data symbols"))
        return False
    for symbol, address in baseline.data_symbols.items():
        b_rel = address - baseline.data_base
        v_rel = variant.data_symbols[symbol] - variant.data_base
        if b_rel != v_rel:
            findings.append(Finding(
                "verify.transparency.data",
                f"data symbol {symbol!r} moved within the segment "
                f"({b_rel:#x} -> {v_rel:#x})"))
    b_words = {address - baseline.data_base: value
               for address, value in baseline.data_words.items()}
    v_words = {address - variant.data_base: value
               for address, value in variant.data_words.items()}
    if b_words != v_words:
        findings.append(Finding(
            "verify.transparency.data",
            "initialized data images differ beyond the segment shift"))
    return True


def _check_data(baseline, variant, findings):
    """Data segments must be identical modulo the base shift."""
    if not _check_data_segments(baseline, variant, findings):
        return
    if set(baseline.code_symbols) != set(variant.code_symbols):
        findings.append(Finding(
            "verify.transparency.data",
            "baseline and variant define different code symbols"))


# --------------------------------------------------------------------------
# Stream mode: fused baseline-facts × variant-bytes proof.
#
# Records mode still materializes every variant's lazy instruction
# records (`_LazyRecords`) and compares operands object by object — the
# dominant cost of a per-request proof in the serving hot path. Stream
# mode instead compiles the *baseline* records once into matching facts
# (expected byte images, relocated-disp32 field offsets, branch opcode
# classes) and proves a variant by a single walk over its raw text,
# touching no variant metadata at all. Every variant byte is pinned:
# each position either equals a precomputed baseline encoding (modulo
# the disp32 segment shift / a recomputed branch displacement validated
# against the alignment map) or is a Table-1 NOP encoding. The walk's
# alignment map doubles as the ΔBreakpad symbolication table
# (:class:`AddressMap`).

#: Fact kinds, one per baseline instruction record.
_F_PLAIN, _F_RELOC, _F_BRANCH, _F_SLOW = range(4)

#: Two-byte Table-1 encodings (the 1-byte candidate is just ``0x90``).
_NOP_TWO_BYTE = frozenset(
    candidate.encoding for candidate in NOP_CANDIDATES if candidate.size == 2)

_DISP_PROBE_A = 0x08000000
_DISP_PROBE_B = 0x09000000


def _with_disp(instr, mem, disp):
    """Clone ``instr`` with ``mem``'s displacement replaced by ``disp``,
    preserving the encoding-relevant flags."""
    operands = tuple(
        Mem(base=op.base, index=op.index, scale=op.scale, disp=disp,
            symbol=op.symbol) if op is mem else op
        for op in instr.operands)
    return Instr(instr.mnemonic, *operands,
                 alternate_encoding=instr.alternate_encoding)


def _stream_disp_field(instr, chunk, mem):
    """Byte offset of ``mem``'s disp32 field inside ``chunk``, if provable.

    Same two-probe technique as the incremental linker: encode the
    instruction with two distinct placeholder displacements and require a
    unique offset carrying both little-endian probe values, with every
    byte outside the field displacement-independent and the original
    displacement present in the shipped bytes. Returns ``None`` when any
    of that fails — the caller falls back to per-variant re-encoding.
    """
    try:
        probe_a = encode(_with_disp(instr, mem, _DISP_PROBE_A))
        probe_b = encode(_with_disp(instr, mem, _DISP_PROBE_B))
    except EncodingError:
        return None
    if len(probe_a) != len(chunk) or len(probe_b) != len(chunk):
        return None
    from repro.backend.linkplan import probe_field_offset

    offset = probe_field_offset(probe_a, probe_b,
                                _DISP_PROBE_A.to_bytes(4, "little"),
                                _DISP_PROBE_B.to_bytes(4, "little"))
    if offset is None:
        return None
    if chunk[offset:offset + 4] != (mem.disp & 0xFFFFFFFF).to_bytes(
            4, "little"):
        return None
    if (probe_a[:offset] != chunk[:offset]
            or probe_a[offset + 4:] != chunk[offset + 4:]):
        return None
    return offset


def _build_stream_facts(baseline):
    """Compile the baseline records into per-record matching facts.

    Each fact is ``(kind, baseline_offset, size, payload)``; the caller
    must have validated the baseline's record/image agreement and tiling
    first, so the text slices taken here are authoritative.
    """
    facts = []
    base = baseline.text_base
    floor = baseline.data_base
    text = baseline.text
    for record in baseline.instr_records:
        offset = record.address - base
        size = record.size
        instr = record.instr
        chunk = text[offset:offset + size]
        if instr.is_relative_branch:
            target = offset + size + instr.operands[0].value
            facts.append((_F_BRANCH, offset, size,
                          (instr.mnemonic,
                           JCC_MNEMONICS.get(instr.mnemonic), target)))
            continue
        disp_ops = [op for op in instr.operands
                    if isinstance(op, Mem) and op.disp >= floor]
        if not disp_ops:
            facts.append((_F_PLAIN, offset, size, chunk))
            continue
        field = (_stream_disp_field(instr, chunk, disp_ops[0])
                 if len(disp_ops) == 1 else None)
        if field is None:
            facts.append((_F_SLOW, offset, size, instr))
        else:
            facts.append((_F_RELOC, offset, size,
                          (chunk[:field], chunk[field + 4:],
                           disp_ops[0].disp)))
    return facts


def _parse_branch(v_text, offset, mnemonic, cc):
    """``(size, rel)`` of the branch at ``offset`` if it is ``mnemonic``.

    Accepts any encoding form of the mnemonic (short or near) — NOP
    insertion may relax or shrink a branch — and returns ``None`` when
    the bytes are not that branch at all.
    """
    byte0 = v_text[offset]
    limit = len(v_text)
    if mnemonic == "call":
        if byte0 == 0xE8 and offset + 5 <= limit:
            return 5, int.from_bytes(v_text[offset + 1:offset + 5],
                                     "little", signed=True)
        return None
    if mnemonic == "jmp":
        if byte0 == 0xEB and offset + 2 <= limit:
            disp = v_text[offset + 1]
            return 2, (disp - 256 if disp >= 128 else disp)
        if byte0 == 0xE9 and offset + 5 <= limit:
            return 5, int.from_bytes(v_text[offset + 1:offset + 5],
                                     "little", signed=True)
        return None
    if byte0 == 0x70 + cc and offset + 2 <= limit:
        disp = v_text[offset + 1]
        return 2, (disp - 256 if disp >= 128 else disp)
    if (byte0 == 0x0F and offset + 6 <= limit
            and v_text[offset + 1] == 0x80 + cc):
        return 6, int.from_bytes(v_text[offset + 2:offset + 6],
                                 "little", signed=True)
    return None


def _slow_expected(instr, delta, floor):
    """Expected variant bytes for an ambiguous relocated instruction:
    re-encode with every data displacement shifted by ``delta``."""
    operands = tuple(
        Mem(base=op.base, index=op.index, scale=op.scale,
            disp=op.disp + delta, symbol=op.symbol)
        if isinstance(op, Mem) and op.disp >= floor else op
        for op in instr.operands)
    clone = Instr(instr.mnemonic, *operands,
                  alternate_encoding=instr.alternate_encoding)
    try:
        return encode(clone)
    except EncodingError:
        return None


@dataclass
class AddressMap:
    """Variant ↔ baseline code-address correspondence.

    Byproduct of a stream-mode proof (:meth:`TransparencyProver.
    address_map`): exact by construction, never heuristic — every entry
    comes from the byte alignment the proof validated. This is the
    ΔBreakpad operation for diversified crash reports: a variant stack
    trace resolves to baseline addresses, which the (single, shared)
    baseline symbolization then explains.

    ``v2b`` maps a variant text offset at an instruction boundary to
    ``(baseline_record_index, is_inserted_nop)``; inserted NOPs carry
    the index of the baseline instruction they precede (``None`` for a
    trailing run). ``b2v`` maps every baseline instruction offset (plus
    the end-of-text sentinel) to where it moved in the variant.
    """

    baseline: object
    variant_text_base: int
    variant_text_size: int
    v2b: dict
    b2v: dict

    def to_baseline(self, variant_address):
        """Resolve one variant code address to its baseline meaning.

        Returns a dict with ``status`` one of ``"exact"`` (the address
        starts a carried baseline instruction), ``"inserted_nop"`` (a
        diversification NOP; ``baseline_address`` names the instruction
        it precedes), or ``"unmapped"`` (not an instruction boundary —
        e.g. mid-instruction or outside the text segment).
        """
        offset = variant_address - self.variant_text_base
        entry = self.v2b.get(offset)
        if entry is None:
            return {"status": "unmapped", "variant_address": variant_address}
        index, is_nop = entry
        if index is None:
            return {"status": "inserted_nop",
                    "variant_address": variant_address,
                    "baseline_address": None, "mnemonic": None,
                    "block_id": None}
        record = self.baseline.instr_records[index]
        return {"status": "inserted_nop" if is_nop else "exact",
                "variant_address": variant_address,
                "baseline_address": record.address,
                "mnemonic": record.mnemonic,
                "block_id": record.block_id}

    def to_variant(self, baseline_address):
        """Where ``baseline_address`` (an instruction boundary) moved to
        in the variant, or ``None`` if it is not a boundary."""
        offset = self.b2v.get(baseline_address - self.baseline.text_base)
        if offset is None:
            return None
        return self.variant_text_base + offset


#: Proof modes accepted by :meth:`TransparencyProver.prove`.
PROOF_MODES = ("full", "records", "stream")


class TransparencyProver:
    """Prove many variants against one baseline, amortizing its cost.

    Everything that depends only on the baseline is computed once at
    construction: the decoded baseline instruction stream (byte mode
    re-decoded it for every proof — the dominant cost of a population
    sweep), the baseline record/image validation, the record/coverage
    tiling check and the label index. ``decode_cache`` optionally shares
    the per-binary offset → Instr memo with the simulator fast path
    (:func:`repro.sim.fastpath.shared_decode_cache`), so a baseline that
    has already executed costs no decoding at all.

    ``prove(variant)`` reproduces :func:`prove_transparency` exactly.
    ``prove(variant, mode="records")`` is the batch engine's fast path:
    it drops the byte-mode walk and instead requires that the variant's
    records *tile* its text (:func:`_coverage_finding`). Since record
    mode already validates every record's bytes against the image, the
    tiling check extends that validation to every byte of the image —
    the proof stays complete, without per-variant decoding.

    ``prove(variant, mode="stream")`` is the serving hot path: baseline
    records are compiled once into matching facts and the variant is
    proven by one walk over its raw text — no variant record
    materialization, no per-variant decoding, no operand comparison.
    Every variant byte, code symbol, the entry point, branch targets
    (via the alignment map) and the data image are still pinned, so the
    proof is complete over the *image*; unlike records mode it says
    nothing about the variant's own ``instr_records``, so callers that
    consume those (the batch engine) keep using ``mode="records"``.
    :meth:`address_map` returns the alignment as an :class:`AddressMap`
    for crash-report symbolication.
    """

    def __init__(self, baseline, *, baseline_name="baseline",
                 decode_cache=None):
        self.baseline = baseline
        self.baseline_name = baseline_name
        self._b_record_finding = _record_image_finding(baseline, "baseline")
        self._b_coverage_finding = _coverage_finding(baseline, "baseline")
        self._b_labels = _label_index(baseline)
        self._b_stream = None
        self._b_failure = None
        self._b_facts = None
        self._decode_cache = decode_cache

    def _baseline_stream(self):
        """The decoded baseline stream, built on first byte-mode proof."""
        if self._b_stream is None:
            self._b_stream, self._b_failure = _decode_stream(
                self.baseline.text, self._decode_cache)
        return self._b_stream, self._b_failure

    def _stream_facts(self):
        """Compiled baseline facts, built on first stream-mode proof."""
        if self._b_facts is None:
            self._b_facts = _build_stream_facts(self.baseline)
        return self._b_facts

    def _check_stream(self, variant, findings, *, v2b=None):
        """The fused walk: returns ``(inserted_nops, moved_to)``.

        ``v2b``, when a dict, is filled with the variant-side address
        map (offset → ``(baseline_record_index, is_inserted_nop)``).
        """
        baseline = self.baseline
        facts = self._stream_facts()
        v_text = variant.text
        vlen = len(v_text)
        delta = variant.data_base - baseline.data_base
        floor = baseline.data_base
        nop2 = _NOP_TWO_BYTE
        inserted = 0
        moved_to = {}
        branch_pairs = []
        pending = [] if v2b is not None else None
        v_off = 0
        for index, fact in enumerate(facts):
            kind, b_off, size, payload = fact
            moved_to[b_off] = v_off
            while True:
                if v_off >= vlen:
                    findings.append(Finding(
                        "verify.transparency.stream",
                        "variant text ends before the baseline stream is "
                        "consumed", address=variant.text_base + v_off))
                    return inserted, moved_to
                matched = 0
                if kind == _F_PLAIN:
                    if v_text[v_off:v_off + size] == payload:
                        matched = size
                elif kind == _F_BRANCH:
                    parsed = _parse_branch(v_text, v_off, payload[0],
                                           payload[1])
                    if parsed is not None:
                        matched, rel = parsed
                elif kind == _F_RELOC:
                    prefix, suffix, disp = payload
                    expected = (prefix + ((disp + delta) & 0xFFFFFFFF)
                                .to_bytes(4, "little") + suffix)
                    if v_text[v_off:v_off + size] == expected:
                        matched = size
                else:  # _F_SLOW: ambiguous disp32 field, re-encode
                    expected = _slow_expected(payload, delta, floor)
                    if (expected is not None
                            and v_text[v_off:v_off + len(expected)]
                            == expected):
                        matched = len(expected)
                if matched:
                    break
                if v_text[v_off:v_off + 2] in nop2:
                    nop_size = 2
                elif v_text[v_off] == 0x90:
                    nop_size = 1
                else:
                    findings.append(Finding(
                        "verify.transparency.stream",
                        f"variant bytes at offset {v_off:#x} are neither "
                        f"the next baseline instruction (record at "
                        f"{baseline.text_base + b_off:#x}) nor a Table-1 "
                        f"NOP", address=variant.text_base + v_off))
                    return inserted, moved_to
                if pending is not None:
                    pending.append(v_off)
                inserted += 1
                v_off += nop_size
            if kind == _F_BRANCH:
                branch_pairs.append((payload[2], v_off + matched + rel,
                                     variant.text_base + v_off))
            if v2b is not None:
                for nop_off in pending:
                    v2b[nop_off] = (index, True)
                pending.clear()
                v2b[v_off] = (index, False)
            v_off += matched

        moved_to[len(baseline.text)] = v_off
        while v_off < vlen:
            if v_text[v_off:v_off + 2] in nop2:
                nop_size = 2
            elif v_text[v_off] == 0x90:
                nop_size = 1
            else:
                findings.append(Finding(
                    "verify.transparency.stream",
                    "trailing variant bytes are not Table-1 NOP encodings",
                    address=variant.text_base + v_off))
                return inserted, moved_to
            if v2b is not None:
                v2b[v_off] = (None, True)
            inserted += 1
            v_off += nop_size

        for b_target, v_target, site in branch_pairs:
            if moved_to.get(b_target) != v_target:
                expected = moved_to.get(b_target)
                expected_text = ("no aligned location"
                                 if expected is None else f"{expected:#x}")
                findings.append(Finding(
                    "verify.transparency.branch",
                    f"branch target not recomputed: baseline offset "
                    f"{b_target:#x} moved to {expected_text}, variant "
                    f"branch goes to offset {v_target:#x}", address=site))
        return inserted, moved_to

    def _check_symbols(self, variant, moved_to, findings):
        """Code symbols and the entry point must move with the stream."""
        base = self.baseline.text_base
        for label, b_address in self.baseline.code_symbols.items():
            v_offset = moved_to.get(b_address - base)
            if (v_offset is None
                    or variant.code_symbols.get(label) != base + v_offset):
                findings.append(Finding(
                    "verify.transparency.stream",
                    f"code symbol {label!r} did not move with its "
                    f"instruction stream", address=b_address))
        v_entry = moved_to.get(self.baseline.entry - base)
        if v_entry is None or variant.entry != base + v_entry:
            findings.append(Finding(
                "verify.transparency.stream",
                f"entry point did not move with its instruction stream "
                f"({self.baseline.entry:#x} -> {variant.entry:#x})",
                address=variant.entry))

    def _stream_prove(self, variant, findings, *, v2b=None):
        """Stream-mode body: returns ``(inserted_nops, moved_to)``."""
        for finding in (self._b_record_finding, self._b_coverage_finding):
            if finding is not None:
                findings.append(finding)
                return 0, {}
        inserted, moved_to = self._check_stream(variant, findings, v2b=v2b)
        if not findings:
            self._check_symbols(variant, moved_to, findings)
        _check_data(self.baseline, variant, findings)
        return inserted, moved_to

    def address_map(self, variant, *, variant_name="variant"):
        """Stream-prove ``variant`` and return ``(report, AddressMap)``.

        The map is ``None`` unless the proof is clean — symbolication
        through an unproven alignment would be a guess, and the serving
        layer must report "unsymbolicatable" instead (§6 configs, plan-
        incompatible transforms, corrupted images).
        """
        report = TransparencyReport(baseline_name=self.baseline_name,
                                    variant_name=variant_name)
        if self.baseline.text_base != variant.text_base:
            report.findings.append(Finding(
                "verify.transparency.stream",
                f"text bases differ: {self.baseline.text_base:#x} vs "
                f"{variant.text_base:#x}"))
            return report, None
        v2b = {}
        inserted, moved_to = self._stream_prove(variant, report.findings,
                                                v2b=v2b)
        report.stats = self._stats(variant, inserted, inserted, "stream")
        if not report.ok:
            return report, None
        return report, AddressMap(
            baseline=self.baseline, variant_text_base=variant.text_base,
            variant_text_size=len(variant.text), v2b=v2b, b2v=moved_to)

    def prove(self, variant, *, variant_name="variant", mode="full"):
        """One variant's transparency proof; see :func:`prove_transparency`."""
        if mode not in PROOF_MODES:
            raise ConfigError(
                f"unknown transparency proof mode {mode!r}; choose one "
                f"of {list(PROOF_MODES)}",
                context={"value": mode, "choices": list(PROOF_MODES)})
        baseline = self.baseline
        report = TransparencyReport(baseline_name=self.baseline_name,
                                    variant_name=variant_name)
        if baseline.text_base != variant.text_base:
            report.findings.append(Finding(
                "verify.transparency.stream",
                f"text bases differ: {baseline.text_base:#x} vs "
                f"{variant.text_base:#x}"))
            return report

        if mode == "stream":
            inserted, _ = self._stream_prove(variant, report.findings)
            report.stats = self._stats(variant, inserted, inserted, mode)
            return report

        nops_records = _check_records(
            baseline, variant, report.findings,
            baseline_finding=self._b_record_finding,
            b_labels=self._b_labels)

        if mode == "records":
            for finding in (self._b_coverage_finding,
                            _coverage_finding(variant, "variant")):
                if finding is not None:
                    report.findings.append(finding)
            _check_data(baseline, variant, report.findings)
            nops_bytes = nops_records
        else:
            b_stream, b_failure = self._baseline_stream()
            nops_bytes = _check_bytes(baseline, variant, report.findings,
                                      b_stream=b_stream,
                                      b_failure=b_failure)
            _check_data(baseline, variant, report.findings)
            if not report.findings and nops_records != nops_bytes:
                report.findings.append(Finding(
                    "verify.transparency.stream",
                    f"record mode sees {nops_records} inserted NOP(s) "
                    f"but the byte alignment sees {nops_bytes}"))

        report.stats = self._stats(variant, nops_bytes, nops_records, mode)
        return report

    def _stats(self, variant, nops_bytes, nops_records, mode):
        return {
            "inserted_nops": nops_bytes,
            "inserted_nops_records": nops_records,
            "baseline_instructions": len(self.baseline.instr_records),
            "text_growth": len(variant.text) - len(self.baseline.text),
            "mode": mode,
        }


def prove_transparency(baseline, variant, *, baseline_name="baseline",
                       variant_name="variant"):
    """Prove ``variant`` is ``baseline`` + NOP insertions + recomputed
    offsets; returns a :class:`TransparencyReport`.

    Record mode and byte mode run independently and their insertion
    counts are cross-checked, so neither stale linker metadata nor a
    byte-level corruption can slip through alone. For many variants of
    one baseline, build a :class:`TransparencyProver` instead — this
    one-shot form re-derives the baseline side every call.
    """
    return TransparencyProver(baseline, baseline_name=baseline_name).prove(
        variant, variant_name=variant_name)


def require_transparent(baseline, variant, **names):
    """Prove transparency and raise
    :class:`~repro.errors.TransparencyError` on any finding."""
    report = prove_transparency(baseline, variant, **names)
    if not report.ok:
        raise TransparencyError(
            f"NOP-transparency proof failed: {report.describe()}",
            context={
                "findings": [f.describe() for f in report.findings[:20]],
                "stats": report.stats,
            })
    return report
