"""Diversification-as-a-service: the variant distribution daemon.

The paper measures diversification as a compile-time cost; this package
operationalizes it as the app-store-style service the paper's §7
deployment discussion sketches. ``repro-diversify serve`` runs a
long-lived asyncio daemon that hands each requesting user a unique,
statically verified variant of a program, amortizing compilation and
plan/prover construction across the whole population:

- :mod:`repro.serve.protocol` — the ndjson wire format and the
  deterministic user→seed mapping;
- :mod:`repro.serve.daemon` — the event loop: bounded admission with
  typed ``serve.overloaded`` rejections, in-memory response memo,
  sticky seed-space sharding over single-process worker pools;
- :mod:`repro.serve.workers` — shard-process handlers (adopt once,
  then diversify + plan-apply + stream-verify per request);
- :mod:`repro.serve.symbolicate` — ΔBreakpad frame resolution through
  the transparency proof's address map;
- :mod:`repro.serve.client` — the synchronous client the benchmark and
  tests use.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import SERVE_CONFIGS, VariantServer, run_server
from repro.serve.protocol import user_seed

__all__ = [
    "SERVE_CONFIGS",
    "ServeClient",
    "VariantServer",
    "run_server",
    "user_seed",
]
