"""MinC: the small C-like source language the workloads are written in.

MinC plays the role of C in the paper's pipeline. It is integer-only
(32-bit wrapping arithmetic), with global scalars and arrays, functions,
C-like expressions with short-circuit logicals, and ``print``/``input``
intrinsics for I/O. The full grammar is documented in
:mod:`repro.minc.parser`.

The front end is the classic three stages:

- :mod:`repro.minc.lexer` — source text → token stream,
- :mod:`repro.minc.parser` — tokens → AST (:mod:`repro.minc.ast_nodes`),
- :mod:`repro.minc.sema` — name/arity/category checking,
- :mod:`repro.minc.irgen` — AST → :class:`repro.ir.Module`.

Two sideline modules serve the fuzzer and other AST-level tooling:
:mod:`repro.minc.pretty` (round-tripping pretty-printer — the corpus
stores programs as source text) and :mod:`repro.minc.astutil` (generic
walk/site/clone helpers for AST mutation).
"""

from repro.minc.lexer import Token, tokenize
from repro.minc.parser import parse
from repro.minc.pretty import ast_equal, pretty_print
from repro.minc.sema import analyze
from repro.minc.irgen import compile_to_ir

__all__ = ["Token", "tokenize", "parse", "analyze", "compile_to_ir",
           "pretty_print", "ast_equal"]
