"""Wire protocol of the variant distribution daemon.

Newline-delimited JSON over TCP: each request is one JSON object on one
line, each response one JSON object on one line, strictly in request
order per connection. The shape mirrors the repo's typed error taxonomy
— every failure is ``{"ok": false, "error": {"code", "message",
"context"}}`` with a stable :class:`~repro.errors.ReproError` code, so a
client can match on ``serve.overloaded`` (the HTTP-429 analogue) versus
``serve.error`` versus ``verify.transparency`` without parsing prose.

Operations:

``variant``
    ``{"op": "variant", "program", "config", "user"}`` → a per-user
    unique, statically verified variant description. The user id is
    hashed into the seed space (:func:`user_seed`), so the same user
    always receives the same variant of a given (program, config) and
    distinct users receive distinct seeds.

``symbolicate``
    ``{"op": "symbolicate", "program", "config", "user",
    "addresses": [..]}`` → the ΔBreakpad operation: map variant code
    addresses (a crash stack) back to baseline addresses through the
    transparency proof's address map. Exact or refused — never a guess.

``stats``
    Daemon counters, queue/shard occupancy, hit rates.

``ping``
    Liveness probe.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ReproError, ServeError

#: Longest accepted request line (bytes). A symbolicate request carries
#: at most a stack trace; anything larger is malformed or hostile.
MAX_LINE = 1 << 20

#: Seeds are drawn from this space; 2**63 keeps them inside the range
#: every downstream consumer (random.Random, the cache key) handles.
SEED_SPACE = 1 << 63


def user_seed(program, config_label, user):
    """The deterministic per-user seed for one (program, config).

    SHA-256 of the triple, reduced into the seed space: stable across
    daemon restarts (the "same user, same variant" contract), uniformly
    spread across shards, and collision-free for practical populations.
    """
    digest = hashlib.sha256(
        f"{program}\x00{config_label}\x00{user}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % SEED_SPACE


def encode_message(payload):
    """One wire frame: compact JSON + newline, as bytes."""
    return (json.dumps(payload, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode_message(line):
    """Parse one wire frame; raises :class:`ServeError` on bad input."""
    try:
        payload = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed request line: {exc}",
                         context={"reason": "bad_json"})
    if not isinstance(payload, dict):
        raise ServeError("request must be a JSON object",
                         context={"reason": "not_object"})
    return payload


def error_payload(exc):
    """Serialize an exception as an ``{"ok": false, "error": ...}``
    response, preserving the typed code/context of a ReproError."""
    if isinstance(exc, ReproError):
        context = getattr(exc, "context", None) or {}
        safe = {key: value for key, value in context.items()
                if isinstance(value, (str, int, float, bool, type(None),
                                      list, tuple, dict))}
        return {"ok": False,
                "error": {"code": exc.code, "message": str(exc),
                          "context": safe}}
    return {"ok": False,
            "error": {"code": "serve.internal",
                      "message": f"{type(exc).__name__}: {exc}",
                      "context": {}}}
