"""Dead code elimination.

An instruction is removable when it has no side effects (pure arithmetic,
copies, loads) and its destination register is not used anywhere in the
function. The used-set is recomputed and the sweep repeated until a
fixpoint, so chains of dead definitions disappear.

Calls are conservatively kept (the callee may print or write globals) but a
dead *result* is dropped by clearing ``dst``.
"""

from __future__ import annotations

from repro.ir.instructions import ALoad, Binary, Call, Copy, Input, Unary

_PURE = (Copy, Unary, Binary, ALoad)


def eliminate_dead_code(function):
    """Remove dead pure instructions; returns removal count."""
    removed = 0
    while True:
        used = set()
        for block in function.blocks:
            for instr in block.instrs:
                used.update(instr.used_regs())
        changed = False
        for block in function.blocks:
            kept = []
            for instr in block.instrs:
                if isinstance(instr, _PURE) and instr.dst not in used:
                    removed += 1
                    changed = True
                    continue
                if (isinstance(instr, Call) and instr.dst is not None
                        and instr.dst not in used):
                    instr.dst = None
                    removed += 1
                    changed = True
                if (isinstance(instr, Input) and instr.dst not in used):
                    # Input consumes from the input stream: NOT removable
                    # (it would change which values later inputs read).
                    pass
                kept.append(instr)
            block.instrs = kept
        if not changed:
            return removed
