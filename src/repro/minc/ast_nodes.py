"""AST node classes for MinC.

Plain dataclasses; every node carries the source line it started on so
semantic errors can point at the offending construct.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# -- expressions -------------------------------------------------------------

@dataclass
class IntLit(Node):
    value: int = 0


@dataclass
class Name(Node):
    ident: str = ""


@dataclass
class IndexExpr(Node):
    """``array[index]`` — array must be a global array name."""
    array: str = ""
    index: Node = None


@dataclass
class CallExpr(Node):
    callee: str = ""
    args: list = field(default_factory=list)


@dataclass
class InputExpr(Node):
    """``input()`` — reads the next integer of the program input."""


@dataclass
class UnaryExpr(Node):
    op: str = ""  # "-", "!", "~"
    operand: Node = None


@dataclass
class BinaryExpr(Node):
    op: str = ""  # C-style operator text, e.g. "+", "<=", "&&"
    lhs: Node = None
    rhs: Node = None


# -- statements ---------------------------------------------------------------

@dataclass
class VarDecl(Node):
    """``int name = init;`` — local scalar declaration."""
    name: str = ""
    init: Node = None  # optional


@dataclass
class Assign(Node):
    """``target op= value``; target is Name or IndexExpr; op is "=", "+=", ..."""
    target: Node = None
    op: str = "="
    value: Node = None


@dataclass
class IncDec(Node):
    """``target++;`` / ``target--;`` statement form."""
    target: Node = None
    op: str = "++"


@dataclass
class If(Node):
    cond: Node = None
    then_body: list = field(default_factory=list)
    else_body: list = field(default_factory=list)


@dataclass
class While(Node):
    cond: Node = None
    body: list = field(default_factory=list)


@dataclass
class For(Node):
    """``for (init; cond; step) body`` — init/step are statements or None."""
    init: Node = None
    cond: Node = None
    step: Node = None
    body: list = field(default_factory=list)


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Return(Node):
    value: Node = None  # optional


@dataclass
class PrintStmt(Node):
    value: Node = None


@dataclass
class ExprStmt(Node):
    expr: Node = None


# -- declarations --------------------------------------------------------------

@dataclass
class GlobalDecl(Node):
    """Global scalar (is_array=False, size=1) or array declaration."""
    name: str = ""
    is_array: bool = False
    size: int = 1
    init: list = field(default_factory=list)  # literal initializer values


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: list = field(default_factory=list)  # parameter names
    returns_value: bool = True  # False for void
    body: list = field(default_factory=list)


@dataclass
class Program(Node):
    globals: list = field(default_factory=list)
    functions: list = field(default_factory=list)
