"""Semantic analysis tests: every rejection rule."""

import pytest

from repro.errors import MincSemanticError
from repro.minc.parser import parse
from repro.minc.sema import analyze


def check(source):
    return analyze(parse(source))


def expect_error(source, fragment):
    with pytest.raises(MincSemanticError) as excinfo:
        check(source)
    assert fragment in str(excinfo.value)


def test_valid_program_passes():
    info = check("int g; int a[4]; int f(int x) { return x; } "
                 "int main() { return f(g) + a[0]; }")
    assert "f" in info.functions
    assert "g" in info.scalars
    assert "a" in info.arrays


def test_missing_main():
    expect_error("int f() { return 0; }", "no main")


def test_main_with_params():
    expect_error("int main(int x) { return x; }", "no parameters")


def test_duplicate_global():
    expect_error("int x; int x; int main() { return 0; }", "duplicate")


def test_duplicate_function():
    expect_error("int f() { return 0; } int f() { return 0; } "
                 "int main() { return 0; }", "duplicate")


def test_function_global_collision():
    expect_error("int f; int f() { return 0; } int main() { return 0; }",
                 "collides")


def test_duplicate_parameter():
    expect_error("int f(int a, int a) { return 0; } "
                 "int main() { return 0; }", "duplicate parameter")


def test_undefined_variable():
    expect_error("int main() { return nope; }", "undefined variable")


def test_undefined_array():
    expect_error("int main() { return nope[0]; }", "undefined array")


def test_array_used_as_scalar():
    expect_error("int a[4]; int main() { return a; }", "used as a scalar")


def test_undefined_function_call():
    expect_error("int main() { return nope(); }", "undefined function")


def test_call_arity_mismatch():
    expect_error("int f(int a) { return a; } int main() { return f(); }",
                 "takes 1 args")


def test_void_function_as_value():
    expect_error("void f() { return; } int main() { return f(); }",
                 "used as a value")


def test_void_call_as_statement_is_fine():
    check("void f() { return; } int main() { f(); return 0; }")


def test_break_outside_loop():
    expect_error("int main() { break; return 0; }", "break outside")


def test_continue_outside_loop():
    expect_error("int main() { continue; return 0; }", "continue outside")


def test_break_inside_loop_is_fine():
    check("int main() { while (1) { break; } return 0; }")


def test_void_function_returning_value():
    expect_error("void f() { return 1; } int main() { return 0; }",
                 "void function returns a value")


def test_int_function_bare_return():
    expect_error("int f() { return; } int main() { return 0; }",
                 "returns nothing")


def test_local_redeclaration():
    expect_error("int main() { int x; int x; return 0; }", "redeclaration")


def test_locals_shadow_globals():
    # A local may share a global scalar's name; the local wins.
    check("int x = 5; int main() { int x = 1; return x; }")
