"""Convenience API for constructing IR functions.

The builder keeps a current insertion block and offers one method per
instruction kind; the front end and tests use it instead of poking
instruction lists directly.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import (
    ALoad, AStore, Binary, Branch, Call, CondBranch, Copy, Input, Print,
    Return, Unary,
)
from repro.ir.values import Const


class FunctionBuilder:
    """Builds one :class:`~repro.ir.module.Function` block by block."""

    def __init__(self, function):
        self.function = function
        self.current = None

    # -- block management --------------------------------------------------

    def new_block(self, hint="bb"):
        return self.function.new_block(hint)

    def position_at(self, block):
        """Make ``block`` the insertion point."""
        self.current = block
        return block

    def start_block(self, hint="bb"):
        """Create a block and position at it."""
        return self.position_at(self.new_block(hint))

    @property
    def is_terminated(self):
        """True if the current block already has a terminator."""
        return self.current is not None and self.current.terminator is not None

    def _emit(self, instr):
        if self.current is None:
            raise IRError("no insertion block set")
        if self.current.terminator is not None:
            raise IRError(f"emitting into terminated block "
                          f"{self.current.label!r}")
        self.current.instrs.append(instr)
        return instr

    # -- instructions -------------------------------------------------------

    def const(self, value):
        """Materialize a constant into a fresh register."""
        dst = self.function.new_vreg()
        self._emit(Copy(dst, Const(value)))
        return dst

    def copy(self, dst, src):
        self._emit(Copy(dst, src))
        return dst

    def unary(self, op, src, dst=None):
        dst = dst or self.function.new_vreg()
        self._emit(Unary(op, dst, src))
        return dst

    def binary(self, op, lhs, rhs, dst=None):
        dst = dst or self.function.new_vreg()
        self._emit(Binary(op, dst, lhs, rhs))
        return dst

    def aload(self, array, index, dst=None):
        dst = dst or self.function.new_vreg()
        self._emit(ALoad(dst, array, index))
        return dst

    def astore(self, array, index, value):
        self._emit(AStore(array, index, value))

    def call(self, callee, args, want_result=True):
        dst = self.function.new_vreg() if want_result else None
        self._emit(Call(dst, callee, args))
        return dst

    def print_(self, value):
        self._emit(Print(value))

    def input_(self, dst=None):
        dst = dst or self.function.new_vreg()
        self._emit(Input(dst))
        return dst

    def branch(self, target_block):
        self._emit(Branch(target_block.label))

    def cond_branch(self, cond, then_block, else_block):
        self._emit(CondBranch(cond, then_block.label, else_block.label))

    def ret(self, value=None):
        self._emit(Return(value))
