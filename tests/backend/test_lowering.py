"""Lowering tests: calling convention, fusion, block tagging."""

from repro.backend.lowering import lower_function, lower_module
from repro.minc import compile_to_ir
from repro.opt import optimize_module
from repro.x86.instructions import Instr
from repro.backend.objfile import LabelDef


def lower(source):
    module = optimize_module(compile_to_ir(source))
    return module, lower_module(module, "prog")


def instrs_of(unit, name):
    return unit.function(name).instructions()


def test_prologue_epilogue_shape():
    _module, unit = lower("int main() { return 3; }")
    instrs = instrs_of(unit, "main")
    assert instrs[0].mnemonic == "push"   # push ebp
    assert instrs[1].mnemonic == "mov"    # mov ebp, esp
    assert instrs[-1].mnemonic == "ret"
    assert instrs[-2].mnemonic == "pop"   # pop ebp


def test_function_entry_label_is_first_item():
    _module, unit = lower("int main() { return 3; }")
    items = unit.function("main").items
    assert isinstance(items[0], LabelDef)
    assert items[0].name == "main"


def test_every_instruction_carries_block_id():
    _module, unit = lower("""
    int f(int x) { if (x) { return 1; } return 2; }
    int main() { return f(input()); }
    """)
    for function_code in unit.functions:
        for instr in function_code.instructions():
            assert instr.block_id is not None
            assert instr.block_id[0] == function_code.name


def test_compare_branch_fusion_avoids_setcc():
    # A loop condition should fuse into cmp+jcc: no SETcc in the output.
    _module, unit = lower("""
    int main() {
      int i;
      int acc = 0;
      for (i = 0; i < 10; i++) { acc += i; }
      print(acc);
      return 0;
    }
    """)
    mnemonics = [i.mnemonic for i in instrs_of(unit, "main")]
    assert not any(m.startswith("set") for m in mnemonics)
    assert any(m in ("jl", "jge") for m in mnemonics)


def test_unfused_comparison_materializes_with_setcc():
    # The comparison result is stored, so it cannot fuse.
    _module, unit = lower("""
    int main() {
      int a = input();
      int flag = a < 5;
      print(flag);
      print(flag);
      return 0;
    }
    """)
    mnemonics = [i.mnemonic for i in instrs_of(unit, "main")]
    assert "setl" in mnemonics


def test_call_pushes_args_right_to_left_and_cleans_stack():
    _module, unit = lower("""
    int f(int a, int b) { return a - b; }
    int main() { return f(1, 2); }
    """)
    instrs = instrs_of(unit, "main")
    call_index = next(i for i, instr in enumerate(instrs)
                      if instr.mnemonic == "call")
    # Right-to-left: arg 1 (=2) is pushed before arg 0 (=1).
    from repro.x86.instructions import Imm
    push_values = [i.operands[0].value for i in instrs[:call_index]
                   if i.mnemonic == "push"
                   and isinstance(i.operands[0], Imm)]
    assert push_values == [2, 1]
    cleanup = instrs[call_index + 1]
    assert cleanup.mnemonic == "add"
    assert cleanup.operands[1].value == 8


def test_division_uses_cdq_idiv():
    _module, unit = lower("""
    int main() { int a = input(); int b = input(); print(a / b);
      print(a % b); return 0; }
    """)
    mnemonics = [i.mnemonic for i in instrs_of(unit, "main")]
    assert "cdq" in mnemonics
    assert "idiv" in mnemonics


def test_variable_shift_goes_through_ecx():
    _module, unit = lower("""
    int main() { int a = input(); int s = input(); print(a << s);
      return 0; }
    """)
    instrs = instrs_of(unit, "main")
    shift = next(i for i in instrs if i.mnemonic == "shl")
    assert shift.operands[1].name == "ecx"


def test_print_lowered_to_runtime_call():
    module, unit = lower("int main() { print(1); return 0; }")
    instrs = instrs_of(unit, "main")
    calls = [i for i in instrs if i.mnemonic == "call"]
    assert any(c.operands[0].name == "__print_int" for c in calls)


def test_input_lowered_to_runtime_call():
    _module, unit = lower("int main() { return input(); }")
    instrs = instrs_of(unit, "main")
    calls = [i for i in instrs if i.mnemonic == "call"]
    assert any(c.operands[0].name == "__read_int" for c in calls)


def test_global_scalar_becomes_symbolic_memory():
    _module, unit = lower("int g = 4; int main() { g = g + 1; return g; }")
    instrs = instrs_of(unit, "main")
    from repro.x86.instructions import Mem
    symbols = {op.symbol for i in instrs for op in i.operands
               if isinstance(op, Mem) and op.symbol}
    assert "g" in symbols


def test_edge_tagged_jump_for_two_target_condbranch():
    # A conditional with neither successor as fallthrough produces
    # jcc + jmp; the jmp must carry an ("edge", ...) block id.
    module = optimize_module(compile_to_ir("""
    int main() {
      int x = input();
      int acc = 0;
      while (x > 0) {
        if (x & 1) { acc += 3; } else { acc += 5; }
        x -= 1;
      }
      print(acc);
      return 0;
    }
    """))
    unit = lower_module(module, "prog")
    edge_tagged = [i for i in instrs_of(unit, "main")
                   if isinstance(i.block_id, tuple)
                   and i.block_id and i.block_id[0] == "edge"]
    # Not guaranteed for every layout, but this CFG forces at least one
    # two-target conditional somewhere OR none; assert tags are
    # well-formed when present.
    for instr in edge_tagged:
        assert instr.mnemonic == "jmp"
        assert len(instr.block_id) == 4
