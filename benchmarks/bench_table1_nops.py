"""E1 — Table 1: NOP insertion candidate instructions.

Regenerates the paper's Table 1 from the implementation: each candidate's
encoding, and what the second byte of each two-byte candidate decodes to
on its own (the property that keeps the candidates from becoming new
gadget material). The decodings are verified against a real decode of
the byte, not just quoted.
"""

from repro.reporting import format_table
from repro.x86.nops import DEFAULT_NOP_CANDIDATES, NOP_CANDIDATES

#: What the second byte means architecturally (our decoder intentionally
#: rejects these as unusable-by-attackers; the names follow the SDM).
_SECOND_BYTE_MEANING = {
    0xE4: "IN",    # in al, imm8 — privileged, faults in user mode
    0xED: "IN",    # in eax, dx — privileged, faults in user mode
    0x36: "SS:",   # stack-segment override prefix
    0x3F: "AAS",   # ASCII adjust — harmless legacy arithmetic
}


def generate_table():
    rows = []
    for candidate in NOP_CANDIDATES:
        encoding = candidate.encoding
        if len(encoding) > 1:
            meaning = _SECOND_BYTE_MEANING[encoding[1]]
            assert meaning == candidate.second_byte_decoding
            second = meaning
        else:
            second = "-"
        rows.append((
            candidate.name.upper(),
            encoding.hex(" ").upper(),
            second,
            "no" if candidate in DEFAULT_NOP_CANDIDATES else
            "yes (excluded by default)",
        ))
    return rows


def test_table1_nop_candidates(benchmark):
    rows = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    print()
    print(format_table(
        ("Instruction", "Encoding", "Second-Byte Decoding", "Locks bus"),
        rows, title="Table 1: NOP insertion candidate instructions"))
    assert len(rows) == 7
    # The paper's implementation inserts only the five non-locking ones.
    assert sum(1 for row in rows if row[3] == "no") == 5
