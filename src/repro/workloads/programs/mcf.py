"""429.mcf — single-depot vehicle scheduling (network simplex).

The original chases pointers through a network of arcs; its character is
graph relaxation over array-of-struct storage. This miniature runs
Bellman–Ford over a synthetic arc list: per arc, three loads, a compare
and an occasional store — memory-heavy with a data-dependent branch.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 429.mcf miniature: Bellman-Ford relaxation over a synthetic arc list.
int arc_from[512];
int arc_to[512];
int arc_cost[512];
int dist[128];
int INF = 1000000000;

void build_network(int nodes, int arcs, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < arcs; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    arc_from[i] = x % nodes;
    x = (x * 1103515245 + 12345) & 2147483647;
    arc_to[i] = x % nodes;
    x = (x * 1103515245 + 12345) & 2147483647;
    arc_cost[i] = 1 + x % 100;
  }
}

int relax_all(int nodes, int arcs) {
  int changed = 0;
  int i;
  // Hot loop: arc relaxation, load-heavy with a data-dependent branch.
  for (i = 0; i < arcs; i++) {
    int u = arc_from[i];
    int du = dist[u];
    if (du < INF) {
      int cand = du + arc_cost[i];
      int v = arc_to[i];
      if (cand < dist[v]) {
        dist[v] = cand;
        changed = 1;
      }
    }
  }
  return changed;
}

int main() {
  int nodes = input();
  int arcs = input();
  int rounds = input();
  int seed = input();
  if (nodes > 128) { nodes = 128; }
  if (arcs > 512) { arcs = 512; }
  build_network(nodes, arcs, seed);
  int i;
  for (i = 0; i < nodes; i++) { dist[i] = INF; }
  dist[0] = 0;
  int r;
  for (r = 0; r < rounds; r++) {
    if (relax_all(nodes, arcs) == 0) { break; }
  }
  int sum = 0;
  for (i = 0; i < nodes; i++) {
    if (dist[i] < INF) { sum = (sum + dist[i]) & 16777215; }
  }
  print(sum);
  return 0;
}
"""

WORKLOAD = Workload(
    name="429.mcf",
    source=SOURCE + bank_for("429.mcf"),
    train_input=(32, 128, 40, 3),
    ref_input=(128, 512, 90, 9),
    character="graph relaxation, load-heavy with data-dependent branches",
)
