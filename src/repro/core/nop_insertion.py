"""Algorithm 1: the probabilistic NOP-insertion pass.

For every instruction of the low-level representation the pass makes two
random decisions, exactly as the paper's pseudocode::

    for i in IList:
        roll = random(0.0, 1.0)
        if roll < pNOP:
            nopIndex = random(0, numNOPs)
            insert(i, NOPTable[nopIndex])

The profile-guided variant replaces the constant ``pNOP`` with the
per-block policy from :mod:`repro.core.policies`. Inserted NOPs inherit
the block id of the instruction they precede (they execute exactly as
often), and are marked ``is_inserted_nop`` for the cost model and for
analyses that want ground truth.

The pass runs on label-bearing instruction lists *before* layout, so the
linker recomputes every branch offset around the inserted bytes; the
displacement accumulation of the paper's Figure 2 is therefore a real
consequence of linking, not an emulation.
"""

from __future__ import annotations

from repro.backend.objfile import FunctionCode, ObjectUnit
from repro.x86.instructions import Instr

#: Sentinel distinct from any block id (including ``None``).
_UNSET = object()


def insert_nops(function_code, candidates, rng, probability_for_block):
    """Diversify one function; returns a new :class:`FunctionCode`.

    ``candidates`` is the NOP table (sequence of
    :class:`~repro.x86.nops.NopCandidate`), ``rng`` a seeded
    ``random.Random``, ``probability_for_block`` the per-block policy.
    Non-diversifiable functions (runtime objects) pass through untouched.
    """
    if not function_code.diversifiable:
        return function_code

    candidate_count = len(candidates)
    new_items = []
    append = new_items.append
    roll_once = rng.random
    pick_index = rng.randrange
    # Consecutive instructions almost always share a block, so the
    # policy is consulted once per block run, not once per instruction.
    last_block = last_p = _UNSET
    for item in function_code.items:
        if isinstance(item, Instr):
            block_id = item.block_id
            if block_id != last_block:
                last_p = probability_for_block(block_id)
                last_block = block_id
            p_nop = last_p
            roll = roll_once()
            if roll < p_nop:
                nop_index = pick_index(candidate_count)
                nop = candidates[nop_index].to_instr()
                nop.block_id = block_id
                append(nop)
        append(item)
    return FunctionCode(function_code.name, new_items,
                        diversifiable=function_code.diversifiable)


def insert_nops_in_unit(unit, candidates, rng, probability_for_block):
    """Diversify every function of an object unit; returns a new unit."""
    diversified = ObjectUnit(unit.name,
                             data_symbols=dict(unit.data_symbols))
    for function_code in unit.functions:
        diversified.add_function(
            insert_nops(function_code, candidates, rng,
                        probability_for_block))
    return diversified


def count_inserted_nops(function_code_or_unit):
    """How many instructions in the LR are diversifier-inserted NOPs."""
    if isinstance(function_code_or_unit, ObjectUnit):
        return sum(count_inserted_nops(fc)
                   for fc in function_code_or_unit.functions)
    return sum(1 for item in function_code_or_unit.items
               if isinstance(item, Instr) and item.is_inserted_nop)
