"""Metrics registry: counters, histograms, named deltas, pool folding.

The delta protocol replaces the positional ``(hits, misses, puts)``
tuple that ``record_cache_stats(*delta)`` used to unpack — a reordering
on either side of the process boundary silently swapped hits and
misses. :class:`~repro.obs.metrics.MetricsDelta` is keyed by metric
name, pickles across the pool boundary, and folds associatively.
"""

import pickle

import pytest

from repro.core.config import DiversificationConfig
from repro.obs import metrics
from repro.pipeline import build_population


@pytest.fixture(autouse=True)
def _isolated_registry():
    metrics.reset()
    yield
    metrics.reset()


class TestCountersAndHistograms:
    def test_inc_creates_and_accumulates(self):
        metrics.inc("t.counter")
        metrics.inc("t.counter", 4)
        assert metrics.counters()["t.counter"] == 5

    def test_observe_summarizes(self):
        for value in (2.0, 8.0, 5.0):
            metrics.observe("t.hist", value)
        hist = metrics.histograms()["t.hist"]
        assert hist == {"count": 3, "total": 15.0, "min": 2.0,
                        "max": 8.0, "mean": 5.0}

    def test_zero_removes_one_name(self):
        metrics.inc("t.keep")
        metrics.inc("t.drop")
        metrics.zero("t.drop")
        assert "t.drop" not in metrics.counters()
        assert metrics.counters()["t.keep"] == 1

    def test_stage_timings_reads_stage_histograms(self):
        metrics.observe("stage.compile", 0.25)
        metrics.observe("stage.compile", 0.75)
        metrics.observe("other.hist", 1.0)
        timings = metrics.stage_timings()
        assert set(timings) == {"compile"}
        assert timings["compile"]["calls"] == 2
        assert timings["compile"]["seconds"] == 1.0
        assert timings["compile"]["mean"] == 0.5
        assert timings["compile"]["max"] == 0.75


class TestDeltas:
    def test_delta_contains_only_changes(self):
        metrics.inc("t.before", 3)
        before = metrics.snapshot()
        metrics.inc("t.after", 2)
        metrics.observe("t.hist", 1.5)
        delta = metrics.delta_since(before)
        assert delta.counters == {"t.after": 2}
        assert delta.histograms == {"t.hist": [1, 1.5, 1.5, 1.5]}

    def test_empty_delta_is_falsy(self):
        before = metrics.snapshot()
        assert not metrics.delta_since(before)
        metrics.inc("t.c")
        assert metrics.delta_since(before)

    def test_delta_pickles(self):
        before = metrics.snapshot()
        metrics.inc("t.c", 7)
        metrics.observe("t.h", 2.0)
        delta = metrics.delta_since(before)
        clone = pickle.loads(pickle.dumps(delta))
        assert clone.counters == delta.counters
        assert clone.histograms == delta.histograms

    def test_merge_folds_counters_and_histograms(self):
        metrics.inc("t.c", 1)
        metrics.observe("t.h", 4.0)
        delta = metrics.MetricsDelta(
            counters={"t.c": 2, "t.new": 5},
            histograms={"t.h": [2, 3.0, 1.0, 2.0],
                        "t.fresh": [1, 9.0, 9.0, 9.0]})
        metrics.merge_delta(delta)
        assert metrics.counters() == {"t.c": 3, "t.new": 5}
        hists = metrics.histograms()
        assert hists["t.h"]["count"] == 3
        assert hists["t.h"]["total"] == 7.0
        assert hists["t.h"]["min"] == 1.0
        assert hists["t.h"]["max"] == 4.0
        assert hists["t.fresh"]["total"] == 9.0

    def test_merge_round_trips_through_delta_since(self):
        before = metrics.snapshot()
        metrics.inc("t.c", 3)
        metrics.observe("t.h", 2.0)
        delta = metrics.delta_since(before)
        metrics.reset()
        metrics.merge_delta(delta)
        assert metrics.counters() == {"t.c": 3}
        assert metrics.histograms()["t.h"]["count"] == 1


CONFIG = DiversificationConfig.uniform(0.5)


class TestPoolFoldingParity:
    """Worker metrics must fold back so pool == serial, observably."""

    def _observable(self):
        counters = {name: value
                    for name, value in metrics.counters().items()
                    if name.startswith(("nops.", "linkplan."))}
        hists = metrics.histograms()
        calls = {name: hists[name]["count"]
                 for name in ("stage.nop_insert", "stage.link")
                 if name in hists}
        return counters, calls

    def test_pool_matches_serial(self, fib_build):
        seeds = range(4)
        build_population(fib_build, CONFIG, seeds)
        serial = self._observable()
        assert serial[0].get("nops.inserted", 0) > 0
        assert serial[1]["stage.nop_insert"] == len(seeds)

        metrics.reset()
        build_population(fib_build, CONFIG, seeds, workers=2,
                         force_pool=True)
        assert self._observable() == serial

    def test_heat_class_counters_sum_to_total(self, fib_build):
        build_population(fib_build, CONFIG, range(3))
        counters = metrics.counters()
        by_heat = sum(value for name, value in counters.items()
                      if name.startswith("nops.inserted."))
        assert by_heat == counters["nops.inserted"]


class TestFallbackWarningDedupe:
    """100 seeds used to log 100 identical fallback warnings."""

    def test_one_warning_carrying_seed_count(self, fib_build):
        config = DiversificationConfig.profile_guided(0.0, 0.3)
        prior = len(fib_build.warnings)
        build_population(fib_build, config, range(7), profile=None,
                         fallback=True)
        fresh = fib_build.warnings[prior:]
        assert len(fresh) == 1
        assert "falling back" in fresh[0]
        assert "all 7 seed(s)" in fresh[0]
        assert metrics.counters()["fallback.uniform"] == 7
        assert metrics.counters()["pipeline.warnings"] == 1
