"""Statically prove a variant is "baseline + NOPs + recomputed offsets".

The paper's transformation inserts Table-1 NOPs into the instruction
stream before linking; the linker then re-resolves every branch
displacement and data address around the inserted bytes. So a genuine
variant differs from its baseline in *exactly* three ways:

1. inserted instructions whose bytes are Table-1 NOP encodings
   (:mod:`repro.x86.nops`);
2. relative branch displacements recomputed so that every (baseline
   target, variant target) pair is the same *label* in both symbol
   tables — equivalently, the variant target is where the baseline
   target's code moved to;
3. absolute data displacements shifted by the data-segment delta
   (the variant's longer .text pushes ``data_base`` up).

:func:`prove_transparency` checks this two independent ways and
cross-checks them:

- **record mode** uses the linker's ``instr_records`` — the variant's
  non-NOP record sequence must pair 1:1 with baseline's (same mnemonic,
  same originating block), every inserted-NOP record's text bytes must
  be a Table-1 encoding, and every record's bytes must match the image
  (so corrupted text with stale records cannot pass);
- **byte mode** ignores all metadata and aligns the two raw byte
  streams with a two-pointer walk, consuming unmatched variant bytes
  only when they are Table-1 NOP encodings.

This is the static counterpart of :mod:`repro.check.differential`: it
covers all paths with no simulation, and unlike the dynamic check it
proves the *only* difference is the diversifying transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import Finding
from repro.errors import DecodingError, EncodingError, TransparencyError
from repro.x86.decoder import decode
from repro.x86.encoder import encode
from repro.x86.instructions import Imm, Mem, Rel
from repro.x86.nops import match_nop_candidate
from repro.x86.registers import Register


@dataclass
class TransparencyReport:
    """Findings and statistics from one baseline/variant proof."""

    baseline_name: str
    variant_name: str
    findings: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.findings

    def describe(self):
        status = ("transparent"
                  if self.ok else f"{len(self.findings)} finding(s)")
        return (f"{self.variant_name} vs {self.baseline_name}: {status}, "
                f"{self.stats.get('inserted_nops', 0)} inserted NOP(s)")


def _operands_match(b_instr, v_instr, delta, data_floor):
    """Non-branch operand agreement: identical, except data disp32s
    shifted by the segment delta."""
    if len(b_instr.operands) != len(v_instr.operands):
        return False
    for b_op, v_op in zip(b_instr.operands, v_instr.operands):
        if isinstance(b_op, Mem) and isinstance(v_op, Mem):
            if (b_op.base is not v_op.base or b_op.index is not v_op.index
                    or b_op.scale != v_op.scale):
                return False
            if b_op.disp >= data_floor:
                if v_op.disp - b_op.disp != delta:
                    return False
            elif v_op.disp != b_op.disp:
                return False
        elif isinstance(b_op, (Imm, Register)):
            if b_op != v_op:
                return False
        elif isinstance(b_op, Rel):
            return False  # branches are matched by target, not here
        else:
            return False
    return True


def _slice_of(binary, record):
    offset = record.address - binary.text_base
    return binary.text[offset:offset + record.size]


def _check_records(baseline, variant, findings):
    """Record mode: align via the linker's instruction records."""
    delta = variant.data_base - baseline.data_base
    data_floor = baseline.data_base

    # The image must match the records byte for byte, or the records
    # prove nothing about the shipped text. Incremental-plan links leave
    # branch records' encodings lazy, so re-encode from the resolved
    # operands when needed.
    for binary, label in ((baseline, "baseline"), (variant, "variant")):
        for record in binary.instr_records:
            expected = record.instr.encoding
            if expected is None:
                try:
                    expected = encode(record.instr)
                except EncodingError:
                    expected = None
            if _slice_of(binary, record) != expected:
                findings.append(Finding(
                    "verify.transparency.stream",
                    f"{label} text bytes disagree with the instruction "
                    f"record ({record.mnemonic})", address=record.address))
                return 0

    inserted = [r for r in variant.instr_records if r.is_inserted_nop]
    carried = [r for r in variant.instr_records if not r.is_inserted_nop]
    for record in inserted:
        chunk = _slice_of(variant, record)
        candidate = match_nop_candidate(chunk)
        if candidate is None or candidate.size != len(chunk):
            findings.append(Finding(
                "verify.transparency.nop",
                f"inserted instruction bytes {bytes(chunk).hex()} are "
                f"not a Table-1 NOP encoding", address=record.address))

    if len(carried) != len(baseline.instr_records):
        findings.append(Finding(
            "verify.transparency.stream",
            f"variant carries {len(carried)} non-NOP instructions, "
            f"baseline has {len(baseline.instr_records)}"))
        return len(inserted)

    b_labels = {}
    for label, address in baseline.code_symbols.items():
        b_labels.setdefault(address, []).append(label)

    for b_record, v_record in zip(baseline.instr_records, carried):
        b_instr, v_instr = b_record.instr, v_record.instr
        if (b_instr.mnemonic != v_instr.mnemonic
                or b_record.block_id != v_record.block_id):
            findings.append(Finding(
                "verify.transparency.stream",
                f"stream mismatch: baseline {b_instr!r} at "
                f"{b_record.address:#x} vs variant {v_instr!r}",
                address=v_record.address))
            continue
        if b_instr.is_relative_branch:
            b_target = (b_record.address + b_record.size
                        + b_instr.operands[0].value)
            v_target = (v_record.address + v_record.size
                        + v_instr.operands[0].value)
            if not any(variant.code_symbols.get(label) == v_target
                       for label in b_labels.get(b_target, ())):
                findings.append(Finding(
                    "verify.transparency.branch",
                    f"{b_instr.mnemonic} targets {b_target:#x} in "
                    f"baseline but {v_target:#x} in the variant, and no "
                    f"label maps one to the other",
                    address=v_record.address))
        elif not _operands_match(b_instr, v_instr, delta, data_floor):
            code = ("verify.transparency.disp"
                    if any(isinstance(op, Mem) for op in b_instr.operands)
                    else "verify.transparency.stream")
            findings.append(Finding(
                code,
                f"operands diverge beyond the data-segment shift: "
                f"baseline {b_instr!r} vs variant {v_instr!r}",
                address=v_record.address))
    return len(inserted)


def _check_bytes(baseline, variant, findings):
    """Byte mode: align the raw texts with no linker metadata at all."""
    delta = variant.data_base - baseline.data_base
    data_floor = baseline.data_base
    b_text, v_text = baseline.text, variant.text
    b_off = v_off = 0
    inserted = 0
    #: baseline offset -> variant offset of the NOP run preceding the
    #: corresponding instruction (= where the baseline location moved
    #: to, since insertion places NOPs after labels).
    moved_to = {}
    branch_pairs = []

    while b_off < len(b_text):
        moved_to[b_off] = v_off
        try:
            b_instr = decode(b_text, b_off)
        except DecodingError as exc:
            findings.append(Finding(
                "verify.transparency.stream",
                f"baseline bytes do not decode: {exc}",
                address=baseline.text_base + b_off))
            return inserted
        while True:
            if v_off >= len(v_text):
                findings.append(Finding(
                    "verify.transparency.stream",
                    "variant text ends before the baseline stream is "
                    "consumed", address=variant.text_base + v_off))
                return inserted
            try:
                v_instr = decode(v_text, v_off)
            except DecodingError as exc:
                findings.append(Finding(
                    "verify.transparency.stream",
                    f"variant bytes do not decode: {exc}",
                    address=variant.text_base + v_off))
                return inserted
            if (b_instr.mnemonic == v_instr.mnemonic
                    and (b_instr.is_relative_branch
                         or _operands_match(b_instr, v_instr, delta,
                                            data_floor))):
                break  # aligned: prefer the match over a NOP consume
            candidate = match_nop_candidate(v_text, v_off)
            if candidate is None:
                findings.append(Finding(
                    "verify.transparency.stream",
                    f"variant {v_instr!r} is neither the next baseline "
                    f"instruction ({b_instr!r}) nor a Table-1 NOP",
                    address=variant.text_base + v_off))
                return inserted
            inserted += 1
            v_off += candidate.size
        if b_instr.is_relative_branch:
            branch_pairs.append(
                (b_off + b_instr.size + b_instr.operands[0].value,
                 v_off + v_instr.size + v_instr.operands[0].value,
                 variant.text_base + v_off))
        b_off += b_instr.size
        v_off += v_instr.size

    # Trailing variant bytes must all be insertions.
    moved_to[len(b_text)] = v_off
    while v_off < len(v_text):
        candidate = match_nop_candidate(v_text, v_off)
        if candidate is None:
            findings.append(Finding(
                "verify.transparency.stream",
                "trailing variant bytes are not Table-1 NOP encodings",
                address=variant.text_base + v_off))
            return inserted
        inserted += 1
        v_off += candidate.size

    for b_target, v_target, site in branch_pairs:
        if moved_to.get(b_target) != v_target:
            expected = moved_to.get(b_target)
            expected_text = ("no aligned location"
                             if expected is None else f"{expected:#x}")
            findings.append(Finding(
                "verify.transparency.branch",
                f"branch target not recomputed: baseline offset "
                f"{b_target:#x} moved to {expected_text}, variant "
                f"branch goes to offset {v_target:#x}", address=site))
    return inserted


def _check_data(baseline, variant, findings):
    """Data segments must be identical modulo the base shift."""
    if set(baseline.data_symbols) != set(variant.data_symbols):
        findings.append(Finding(
            "verify.transparency.data",
            "baseline and variant define different data symbols"))
        return
    for symbol, address in baseline.data_symbols.items():
        b_rel = address - baseline.data_base
        v_rel = variant.data_symbols[symbol] - variant.data_base
        if b_rel != v_rel:
            findings.append(Finding(
                "verify.transparency.data",
                f"data symbol {symbol!r} moved within the segment "
                f"({b_rel:#x} -> {v_rel:#x})"))
    b_words = {address - baseline.data_base: value
               for address, value in baseline.data_words.items()}
    v_words = {address - variant.data_base: value
               for address, value in variant.data_words.items()}
    if b_words != v_words:
        findings.append(Finding(
            "verify.transparency.data",
            "initialized data images differ beyond the segment shift"))
    if set(baseline.code_symbols) != set(variant.code_symbols):
        findings.append(Finding(
            "verify.transparency.data",
            "baseline and variant define different code symbols"))


def prove_transparency(baseline, variant, *, baseline_name="baseline",
                       variant_name="variant"):
    """Prove ``variant`` is ``baseline`` + NOP insertions + recomputed
    offsets; returns a :class:`TransparencyReport`.

    Record mode and byte mode run independently and their insertion
    counts are cross-checked, so neither stale linker metadata nor a
    byte-level corruption can slip through alone.
    """
    report = TransparencyReport(baseline_name=baseline_name,
                                variant_name=variant_name)
    if baseline.text_base != variant.text_base:
        report.findings.append(Finding(
            "verify.transparency.stream",
            f"text bases differ: {baseline.text_base:#x} vs "
            f"{variant.text_base:#x}"))
        return report

    nops_records = _check_records(baseline, variant, report.findings)
    nops_bytes = _check_bytes(baseline, variant, report.findings)
    _check_data(baseline, variant, report.findings)

    if not report.findings and nops_records != nops_bytes:
        report.findings.append(Finding(
            "verify.transparency.stream",
            f"record mode sees {nops_records} inserted NOP(s) but the "
            f"byte alignment sees {nops_bytes}"))
    report.stats = {
        "inserted_nops": nops_bytes,
        "inserted_nops_records": nops_records,
        "baseline_instructions": len(baseline.instr_records),
        "text_growth": len(variant.text) - len(baseline.text),
    }
    return report


def require_transparent(baseline, variant, **names):
    """Prove transparency and raise
    :class:`~repro.errors.TransparencyError` on any finding."""
    report = prove_transparency(baseline, variant, **names)
    if not report.ok:
        raise TransparencyError(
            f"NOP-transparency proof failed: {report.describe()}",
            context={
                "findings": [f.describe() for f in report.findings[:20]],
                "stats": report.stats,
            })
    return report
