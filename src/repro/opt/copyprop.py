"""Block-local copy and constant propagation.

Within one basic block, tracks the most recent ``dst = src`` copies and
rewrites later uses of ``dst`` to ``src`` (a register or constant), until
either register is redefined. Being block-local keeps the analysis trivially
correct in our non-SSA IR; the pipeline loop plus DCE recovers most of what
a global pass would.
"""

from __future__ import annotations

from repro.ir.instructions import (
    ALoad, AStore, Binary, Call, CondBranch, Copy, Print, Return, Unary,
)
from repro.ir.values import VirtualReg


def _substitute(value, env):
    if isinstance(value, VirtualReg):
        return env.get(value, value)
    return value


def propagate_copies(function):
    """Propagate copies within each block; returns change count."""
    changed = 0
    for block in function.blocks:
        env = {}
        for instr in block.instrs:
            changed += _rewrite_uses(instr, env)
            defs = instr.defs()
            for defined in defs:
                # Any mapping *to* the defined register is now stale.
                stale = [k for k, v in env.items() if v == defined]
                for key in stale:
                    del env[key]
                env.pop(defined, None)
            if isinstance(instr, Copy) and instr.dst != instr.src:
                env[instr.dst] = instr.src
    return changed


def _rewrite_uses(instr, env):
    changed = 0
    if isinstance(instr, Copy):
        new = _substitute(instr.src, env)
        if new != instr.src:
            instr.src = new
            changed += 1
    elif isinstance(instr, Unary):
        new = _substitute(instr.src, env)
        if new != instr.src:
            instr.src = new
            changed += 1
    elif isinstance(instr, Binary):
        new_lhs = _substitute(instr.lhs, env)
        new_rhs = _substitute(instr.rhs, env)
        if new_lhs != instr.lhs:
            instr.lhs = new_lhs
            changed += 1
        if new_rhs != instr.rhs:
            instr.rhs = new_rhs
            changed += 1
    elif isinstance(instr, ALoad):
        new = _substitute(instr.index, env)
        if new != instr.index:
            instr.index = new
            changed += 1
    elif isinstance(instr, AStore):
        new_index = _substitute(instr.index, env)
        new_value = _substitute(instr.value, env)
        if new_index != instr.index:
            instr.index = new_index
            changed += 1
        if new_value != instr.value:
            instr.value = new_value
            changed += 1
    elif isinstance(instr, Call):
        for position, arg in enumerate(instr.args):
            new = _substitute(arg, env)
            if new != arg:
                instr.args[position] = new
                changed += 1
    elif isinstance(instr, Print):
        new = _substitute(instr.value, env)
        if new != instr.value:
            instr.value = new
            changed += 1
    elif isinstance(instr, CondBranch):
        new = _substitute(instr.cond, env)
        if new != instr.cond:
            instr.cond = new
            changed += 1
    elif isinstance(instr, Return) and instr.value is not None:
        new = _substitute(instr.value, env)
        if new != instr.value:
            instr.value = new
            changed += 1
    return changed
