"""Low-level representation (LR) containers.

A lowered function is a flat list of *code items*: :class:`LabelDef`
markers interleaved with :class:`~repro.x86.instructions.Instr`. Branch
operands are :class:`~repro.x86.instructions.Label` until the linker
resolves them. This list is exactly the representation the NOP-insertion
pass rewrites — instructions can be inserted anywhere without disturbing
label identity, and the linker recomputes every offset afterwards
(displacement accumulation is therefore real).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.instructions import Instr


@dataclass
class LabelDef:
    """Defines a code label at this position."""

    name: str

    def __repr__(self):
        return f"{self.name}:"


@dataclass
class FunctionCode:
    """One lowered function.

    ``diversifiable`` is False for pre-assembled runtime objects: the
    paper's C library is distributed as object code that the diversifying
    compiler never sees, which is why a constant floor of gadgets survives
    across the whole population (paper §5.2, Table 3 discussion).
    """

    name: str
    items: list = field(default_factory=list)
    diversifiable: bool = True

    def instructions(self):
        """Just the instructions, in order."""
        return [item for item in self.items if isinstance(item, Instr)]

    def label(self, suffix=""):
        """The function's entry label (or a local label name)."""
        return f"{self.name}{suffix}"

    def __repr__(self):
        return (f"FunctionCode({self.name!r}, {len(self.items)} items, "
                f"diversifiable={self.diversifiable})")


@dataclass
class ObjectUnit:
    """A collection of lowered functions plus data-symbol definitions.

    ``data_symbols`` maps a symbol name to a list of initial 32-bit word
    values (the symbol's size is 4 × len(values)).
    """

    name: str
    functions: list = field(default_factory=list)
    data_symbols: dict = field(default_factory=dict)

    def add_function(self, function_code):
        self.functions.append(function_code)
        return function_code

    def function(self, name):
        for function_code in self.functions:
            if function_code.name == name:
                return function_code
        raise KeyError(name)

    def __repr__(self):
        return (f"ObjectUnit({self.name!r}, {len(self.functions)} functions, "
                f"{len(self.data_symbols)} data symbols)")
