"""Compile-time configuration of the diversifying pass."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.probability import (
    LogProfileProbability, UniformProbability,
)
from repro.x86.nops import DEFAULT_NOP_CANDIDATES, NOP_CANDIDATES


@dataclass(frozen=True)
class DiversificationConfig:
    """All knobs of the diversifying compiler.

    - ``probability_model`` — a :mod:`repro.core.probability` model.
    - ``include_xchg_nops`` — enable the two bus-locking XCHG candidates
      (off by default, as in the paper, because of their cost).
    - ``basic_block_shifting`` — the §6 extension: a jumped-over NOP sled
      of random size at each function entry, compensating for the low
      accumulated displacement at the beginning of the binary.
    - ``max_shift_bytes`` — upper bound for the per-function sled size.
    - ``encoding_substitution`` — §6's equivalent-instruction
      substitution at encoding granularity: randomly flip the ModRM
      direction bit of reg,reg MOV/ALU instructions (byte-distinct,
      semantics- and size-identical).
    - ``function_reordering`` — §6's function reordering: permute the
      layout order of the program's functions.
    """

    probability_model: object = field(
        default_factory=lambda: UniformProbability(0.5))
    include_xchg_nops: bool = False
    basic_block_shifting: bool = False
    max_shift_bytes: int = 16
    encoding_substitution: bool = False
    function_reordering: bool = False

    @property
    def nop_candidates(self):
        if self.include_xchg_nops:
            return NOP_CANDIDATES
        return DEFAULT_NOP_CANDIDATES

    @property
    def requires_profile(self):
        return self.probability_model.requires_profile

    def uniform_fallback(self):
        """This configuration with the profile dependency removed.

        Degrades a profile-guided model to uniform insertion at its
        ``p_max`` — every block treated as cold, exactly what the
        profile-guided policy computes for an empty profile — keeping all
        other knobs. Used when profile collection fails and the pipeline
        chooses to degrade gracefully instead of aborting the build.
        """
        if not self.requires_profile:
            return self
        return replace(self, probability_model=UniformProbability(
            self.probability_model.p_max))

    def describe(self):
        text = self.probability_model.describe()
        if self.include_xchg_nops:
            text += " +xchg"
        if self.basic_block_shifting:
            text += " +bbshift"
        if self.encoding_substitution:
            text += " +subst"
        if self.function_reordering:
            text += " +reorder"
        return text

    # -- convenience constructors matching the paper's five configurations --

    @classmethod
    def uniform(cls, p, **kwargs):
        """The naive pass at constant probability ``p``."""
        return cls(probability_model=UniformProbability(p), **kwargs)

    @classmethod
    def profile_guided(cls, p_min, p_max, **kwargs):
        """The paper's logarithmic profile-guided pass."""
        return cls(probability_model=LogProfileProbability(p_min, p_max),
                   **kwargs)


#: The five configurations evaluated in the paper's Figure 4 and Tables
#: 2-3, keyed by the paper's labels.
PAPER_CONFIGS = {
    "50%": DiversificationConfig.uniform(0.50),
    "30%": DiversificationConfig.uniform(0.30),
    "25-50%": DiversificationConfig.profile_guided(0.25, 0.50),
    "10-50%": DiversificationConfig.profile_guided(0.10, 0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}
