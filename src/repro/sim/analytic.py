"""Analytic cycle estimation.

NOP insertion never changes control flow, so the cycle count of any
variant is fully determined by (a) the variant's instruction records and
(b) the execution counts of its blocks — which equal the *original*
program's block counts. The analytic engine evaluates
:func:`repro.sim.costs.cycles_from_counts` over those inputs; tests assert
it matches the simulator's measured counts exactly, and the Figure-4
benchmark sweep uses it so that the 19 × 5 × 5-variant matrix costs
seconds, not hours.
"""

from __future__ import annotations

from repro.runtime.lib import runtime_call_counts
from repro.sim.costs import DEFAULT_COST_MODEL, evaluator_for


def block_counts_from_sim(binary, addr_counts):
    """Per-block execution counts from a simulated run's address counts.

    The count of a block is the count of its first instruction; records
    are in layout order, so the first record seen for each block_id is that
    block's first instruction.
    """
    counts = {}
    for record in binary.instr_records:
        if record.block_id not in counts:
            counts[record.block_id] = addr_counts.get(record.address, 0)
    return counts


def block_counts_from_profile(module, profile):
    """Assemble the full block_id → count map the cost engine needs.

    Combines the profile's program block counts, its edge counts (for the
    ``("edge", fn, src, dst)`` ids that tag the second jump of two-target
    conditional branches) and the derived runtime-library call counts.
    """
    counts = dict(profile.block_counts)
    for (function, source, target), value in profile.edge_counts.items():
        if source is not None:
            counts[("edge", function, source, target)] = value
    counts.update(runtime_call_counts(module, profile.block_counts))
    return counts


def estimate_cycles(binary, counts, model=DEFAULT_COST_MODEL):
    """Cycles of ``binary`` under the given block execution counts.

    Evaluates through the shared per-binary cost-table memo
    (:func:`repro.sim.costs.evaluator_for`), so repeated estimates of
    the same binary — a population sweep over many seeds, or the same
    baseline under several inputs — walk its records once. Bit-identical
    to :func:`repro.sim.costs.cycles_from_counts` over the same records.
    """
    return evaluator_for(model).cycles(binary, counts)
