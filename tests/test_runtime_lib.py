"""Runtime library correctness tests.

The runtime routines beyond ``_start``/``__print_int``/``__read_int``
exist to reproduce the paper's undiversified-libc gadget floor — but
they are real, working code, not filler. Each test drives one routine
through a hand-written assembly ``main`` (the runtime's ``_start`` calls
it and exits with its return value).
"""

import pytest

from repro.backend.linker import link
from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.runtime.lib import RUNTIME_FUNCTION_NAMES, runtime_unit
from repro.sim.machine import run_binary
from repro.x86.instructions import Imm, Instr, Label, Mem
from repro.x86.registers import EAX, ECX, ESP


def drive(main_items, data_symbols=None):
    """Link a hand-written ``main`` against the runtime and execute."""
    unit = ObjectUnit("driver")
    unit.add_function(FunctionCode("main",
                                   [LabelDef("main")] + list(main_items)))
    if data_symbols:
        unit.data_symbols.update(data_symbols)
    binary = link([runtime_unit(), unit])
    return run_binary(binary), binary


def drive_with_addresses(make_items, data_symbols):
    """Like :func:`drive` for mains that embed data addresses as
    immediates: ``make_items(symbols)`` builds the item list from a
    symbol→address map, and linking iterates to a fixpoint (address
    guesses change instruction sizes, which move the data section).
    """
    symbols = {name: 0x0804F000 for name in data_symbols}
    binary = None
    for _ in range(4):
        unit = ObjectUnit("driver")
        unit.add_function(FunctionCode(
            "main", [LabelDef("main")] + list(make_items(symbols))))
        unit.data_symbols.update(data_symbols)
        binary = link([runtime_unit(), unit])
        if binary.data_symbols == {**binary.data_symbols, **symbols}:
            break
        symbols = dict(binary.data_symbols)
    return run_binary(binary), binary


def call_runtime(function, args, data_symbols=None):
    """main() { return function(*args); }"""
    items = []
    for arg in reversed(args):
        items.append(Instr("push", Imm(arg)))
    items.append(Instr("call", Label(function)))
    if args:
        items.append(Instr("add", ESP, Imm(4 * len(args))))
    items.append(Instr("ret"))
    return drive(items, data_symbols)


def test_runtime_names_stable():
    assert RUNTIME_FUNCTION_NAMES[0] == "_start"
    assert "__print_int" in RUNTIME_FUNCTION_NAMES
    assert "__gcd" in RUNTIME_FUNCTION_NAMES


@pytest.mark.parametrize("value,expected", [(5, 5), (-5, 5), (0, 0)])
def test_abs(value, expected):
    result, _binary = call_runtime("__abs", [value])
    assert result.exit_code == expected


@pytest.mark.parametrize("a,b,expected", [(3, 9, 3), (9, 3, 3),
                                          (-2, 2, -2)])
def test_imin(a, b, expected):
    result, _binary = call_runtime("__imin", [a, b])
    assert result.exit_code == expected


@pytest.mark.parametrize("a,b,expected", [(3, 9, 9), (9, 3, 9),
                                          (-2, 2, 2)])
def test_imax(a, b, expected):
    result, _binary = call_runtime("__imax", [a, b])
    assert result.exit_code == expected


@pytest.mark.parametrize("a,b,expected", [(12, 18, 6), (7, 13, 1),
                                          (42, 0, 42)])
def test_gcd(a, b, expected):
    result, _binary = call_runtime("__gcd", [a, b])
    assert result.exit_code == expected


def test_udiv10():
    result, _binary = call_runtime("__udiv10", [1234])
    assert result.exit_code == 123


def test_sumw():
    def make_items(symbols):
        return [
            Instr("push", Imm(4)),
            Instr("push", Imm(symbols["buffer"])),
            Instr("call", Label("__sumw")),
            Instr("add", ESP, Imm(8)),
            Instr("ret"),
        ]
    result, _binary = drive_with_addresses(
        make_items, {"buffer": [10, 20, 30, 40]})
    assert result.exit_code == 100


def test_strlenw():
    def make_items(symbols):
        return [
            Instr("push", Imm(symbols["words"])),
            Instr("call", Label("__strlenw")),
            Instr("add", ESP, Imm(4)),
            Instr("ret"),
        ]
    result, _binary = drive_with_addresses(
        make_items, {"words": [7, 7, 7, 0, 9]})
    assert result.exit_code == 3


def test_memcpyw():
    def make_items(symbols):
        return [
            Instr("push", Imm(3)),
            Instr("push", Imm(symbols["src"])),
            Instr("push", Imm(symbols["dst"])),
            Instr("call", Label("__memcpyw")),
            Instr("add", ESP, Imm(12)),
            Instr("mov", EAX, Mem(disp=symbols["dst"] + 8)),  # dst[2]
            Instr("ret"),
        ]
    result, _binary = drive_with_addresses(
        make_items, {"src": [1, 2, 3], "dst": [0, 0, 0]})
    assert result.exit_code == 3


def test_memsetw():
    def make_items(symbols):
        return [
            Instr("push", Imm(2)),
            Instr("push", Imm(9)),
            Instr("push", Imm(symbols["dst"])),
            Instr("call", Label("__memsetw")),
            Instr("add", ESP, Imm(12)),
            Instr("mov", EAX, Mem(disp=symbols["dst"])),
            Instr("add", EAX, Mem(disp=symbols["dst"] + 4)),
            Instr("ret"),
        ]
    result, _binary = drive_with_addresses(make_items,
                                           {"dst": [0, 0, 0]})
    assert result.exit_code == 18


def test_swapw():
    def make_items(symbols):
        base = symbols["pair"]
        return [
            Instr("push", Imm(base + 4)),
            Instr("push", Imm(base)),
            Instr("call", Label("__swapw")),
            Instr("add", ESP, Imm(8)),
            Instr("mov", EAX, Mem(disp=base)),  # now 222
            Instr("ret"),
        ]
    result, _binary = drive_with_addresses(make_items,
                                           {"pair": [111, 222]})
    assert result.exit_code == 222


def test_callee_saved_preserved_by_print():
    # __print_int must preserve callee-saved registers; check via ECX
    # being scratch but EBX-like flow: store a sentinel in a callee-saved
    # register (EBX is used by the syscall wrapper itself, which is
    # exactly what the push/pop in __print_int protects).
    from repro.x86.registers import EBX
    items = [
        Instr("push", EBX),
        Instr("mov", EBX, Imm(123)),
        Instr("push", Imm(55)),
        Instr("call", Label("__print_int")),
        Instr("add", ESP, Imm(4)),
        Instr("mov", EAX, EBX),       # must still be 123
        Instr("pop", EBX),
        Instr("ret"),
    ]
    result, _binary = drive(items)
    assert result.output == [55]
    assert result.exit_code == 123
