"""Constant folding.

Folds :class:`Binary`/:class:`Unary` instructions whose operands are all
constants into copies, and conditional branches on constants into
unconditional branches. Runs to a local fixpoint in one sweep because
copies feed :mod:`repro.opt.copyprop`, which re-exposes more constants on
the next pipeline iteration.
"""

from __future__ import annotations

from repro.ir.instructions import (
    Binary, Branch, CondBranch, Copy, Unary, evaluate_binary, evaluate_unary,
)
from repro.ir.values import Const


def fold_constants(function):
    """Fold constant expressions in ``function``; returns change count."""
    changed = 0
    for block in function.blocks:
        new_instrs = []
        for instr in block.instrs:
            if (isinstance(instr, Binary)
                    and isinstance(instr.lhs, Const)
                    and isinstance(instr.rhs, Const)):
                value = evaluate_binary(instr.op, instr.lhs.value,
                                        instr.rhs.value)
                new_instrs.append(Copy(instr.dst, Const(value)))
                changed += 1
            elif isinstance(instr, Unary) and isinstance(instr.src, Const):
                value = evaluate_unary(instr.op, instr.src.value)
                new_instrs.append(Copy(instr.dst, Const(value)))
                changed += 1
            elif (isinstance(instr, CondBranch)
                  and isinstance(instr.cond, Const)):
                target = (instr.then_target if instr.cond.value != 0
                          else instr.else_target)
                new_instrs.append(Branch(target))
                changed += 1
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs
    return changed
