"""464.h264ref — video encoding.

The original's hottest kernel is sum-of-absolute-differences block
matching for motion estimation: dense absolute-difference accumulation
over 4×4/16×16 pixel blocks with a search window. The miniature does
exactly that over two synthetic frames.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 464.h264ref miniature: SAD block matching over a search window.
int frame_ref[4096];   // 64x64 reference frame
int frame_cur[4096];   // 64x64 current frame
int motion_x[64];
int motion_y[64];

void make_frames(int seed) {
  int i;
  int x = seed;
  for (i = 0; i < 4096; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    frame_ref[i] = x & 255;
  }
  // Current frame: the reference shifted with noise, so motion search
  // has real structure to find.
  for (i = 0; i < 4096; i++) {
    int src = (i + 130) & 4095;
    x = (x * 1103515245 + 12345) & 2147483647;
    frame_cur[i] = (frame_ref[src] + (x & 7)) & 255;
  }
}

int sad_4x4(int cur_base, int ref_base) {
  int sad = 0;
  int row;
  // THE hot kernel: 16 absolute differences per call.
  for (row = 0; row < 4; row++) {
    int c = cur_base + row * 64;
    int r = ref_base + row * 64;
    int k;
    for (k = 0; k < 4; k++) {
      int d = frame_cur[c + k] - frame_ref[r + k];
      if (d < 0) { d = -d; }
      sad += d;
    }
  }
  return sad;
}

int search_block(int bx, int by, int window, int block_index) {
  int cur_base = by * 4 * 64 + bx * 4;
  int best = 2147483647;
  int dy;
  for (dy = -window; dy <= window; dy++) {
    int dx;
    for (dx = -window; dx <= window; dx++) {
      int ry = by * 4 + dy;
      int rx = bx * 4 + dx;
      if (ry < 0 || rx < 0 || ry > 60 || rx > 60) { continue; }
      int sad = sad_4x4(cur_base, ry * 64 + rx);
      if (sad < best) {
        best = sad;
        motion_x[block_index & 63] = dx;
        motion_y[block_index & 63] = dy;
      }
    }
  }
  return best;
}

int main() {
  int window = input();
  int block_rows = input();
  int seed = input();
  if (window > 4) { window = 4; }
  if (block_rows > 16) { block_rows = 16; }
  make_frames(seed);
  int total = 0;
  int by;
  for (by = 0; by < block_rows; by++) {
    int bx;
    for (bx = 0; bx < 16; bx++) {
      total = (total + search_block(bx, by, window, by * 16 + bx))
              & 16777215;
    }
  }
  int i;
  for (i = 0; i < 64; i++) {
    total = (total + motion_x[i] * 3 + motion_y[i]) & 16777215;
  }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="464.h264ref",
    source=SOURCE + bank_for("464.h264ref"),
    train_input=(1, 3, 21),
    ref_input=(2, 6, 9),
    character="SAD motion search: abs-diff accumulation, load+ALU mix",
)
