"""Shared infrastructure for the benchmark harness.

Expensive artifacts (program builds, profiles, execution counts, variant
gadget signatures) are memoized at module level so the Table-2 and
Table-3 benches share one population per (workload, config).

Populations are built whole — the first request for any seed of a
(workload, config) pair batch-builds every seed of that population
through :func:`repro.pipeline.build_population`, which fans out over a
process pool when ``REPRO_WORKERS`` > 1 and reuses on-disk artifacts
when ``REPRO_CACHE_DIR`` is set; gadget scanning likewise fans out via
:func:`repro.security.population.population_signatures`. Only the
derived scalars (gadget signature maps, overhead fractions) are
retained; the binaries themselves are dropped so a full Table-2/3 sweep
stays memory-bounded.

Environment knobs:

- ``REPRO_POPULATION``  — variants per (workload, config) for the
  security tables (paper: 25; default 25).
- ``REPRO_PERF_SEEDS``  — randomized builds per configuration for the
  Figure-4 sweep (paper: 5; default 5).
- ``REPRO_WORKERS``     — process-pool width for population builds
  (default 1 = serial; 0 = cpu count).
- ``REPRO_CACHE_DIR``   — on-disk variant artifact cache root
  (unset = no caching).
"""

from __future__ import annotations

import os
import subprocess

from repro.core.config import PAPER_CONFIGS
from repro.obs.knobs import REGISTRY, knob_value
from repro.pipeline import ProgramBuild, build_population
from repro.security.population import population_signatures
from repro.sim.batch import PopulationSimulator, population_cycles
from repro.security.survivor import gadget_signatures
from repro.workloads.registry import SPEC_ORDER, get_workload

#: Config labels in the paper's column order (Table 2).
CONFIG_ORDER = ("50%", "25-50%", "10-50%", "30%", "0-30%")


def environment_stamp():
    """Host facts stamped into every BENCH_*.json so diffs across
    machines and revisions are interpretable: core count, the simulator
    engines this build knows, and the git revision the numbers belong
    to. Shared by bench_runtime, bench_serve and check_campaign."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
            timeout=10).stdout.strip() or "unknown"
    except OSError:
        sha = "unknown"
    return {
        "cpu_count": os.cpu_count(),
        "engines": REGISTRY["REPRO_SIM_ENGINE"].canonical_choices(),
        "git_sha": sha,
    }

POPULATION_SIZE = knob_value("REPRO_POPULATION")
PERF_SEEDS = knob_value("REPRO_PERF_SEEDS")

_BUILDS = {}
_PROFILES = {}
_COUNTS = {}
_BASELINES = {}
_BASELINE_SIGNATURES = {}
_VARIANT_SIGNATURES = {}
_VARIANT_OVERHEADS = {}


def build_for(name):
    """Cached ProgramBuild for a named workload."""
    if name not in _BUILDS:
        workload = get_workload(name)
        _BUILDS[name] = ProgramBuild(workload.source, workload.name)
    return _BUILDS[name]


def workload_for(name):
    return get_workload(name)


def train_profile(name):
    """Cached training profile (train input set)."""
    if name not in _PROFILES:
        workload = get_workload(name)
        _PROFILES[name] = build_for(name).profile(workload.train_input)
    return _PROFILES[name]


def ref_counts(name):
    """Cached ref-input execution counts for the cost engine."""
    if name not in _COUNTS:
        workload = get_workload(name)
        _COUNTS[name] = build_for(name).execution_counts(
            workload.ref_input)
    return _COUNTS[name]


def baseline_binary(name):
    if name not in _BASELINES:
        _BASELINES[name] = build_for(name).link_baseline()
    return _BASELINES[name]


def baseline_signatures(name):
    if name not in _BASELINE_SIGNATURES:
        _BASELINE_SIGNATURES[name] = gadget_signatures(
            baseline_binary(name).text)
    return _BASELINE_SIGNATURES[name]


def _population(name, config_label, seeds):
    """Batch-build one population's binaries, in ``seeds`` order."""
    config = PAPER_CONFIGS[config_label]
    profile = train_profile(name) if config.requires_profile else None
    return build_population(build_for(name), config, seeds, profile)


def variant_signatures(name, config_label, seed):
    """Gadget signature map of one diversified variant (memoized).

    The first miss builds the whole ``POPULATION_SIZE`` population for
    (workload, config) at once — parallel/cached when configured — and
    keeps only the signature maps, not the binaries.
    """
    key = (name, config_label, seed)
    if key not in _VARIANT_SIGNATURES:
        seeds = range(max(POPULATION_SIZE, seed + 1))
        texts = [variant.text
                 for variant in _population(name, config_label, seeds)]
        for built_seed, signatures in zip(seeds,
                                          population_signatures(texts)):
            _VARIANT_SIGNATURES[(name, config_label, built_seed)] = \
                signatures
    return _VARIANT_SIGNATURES[key]


def variant_overhead(name, config_label, seed):
    """Fractional slowdown of one variant on the ref input (memoized).

    Like :func:`variant_signatures`, the first miss batch-builds all
    ``PERF_SEEDS`` variants and keeps only the overhead scalars.
    """
    key = (name, config_label, seed)
    if key not in _VARIANT_OVERHEADS:
        counts = ref_counts(name)
        seeds = range(max(PERF_SEEDS, seed + 1))
        variants = _population(name, config_label, seeds)
        baseline_cycles, variant_cycles = population_cycles(
            baseline_binary(name), variants, counts)
        for built_seed, cycles in zip(seeds, variant_cycles):
            _VARIANT_OVERHEADS[(name, config_label, built_seed)] = \
                cycles / baseline_cycles - 1.0
    return _VARIANT_OVERHEADS[key]


def population_dynamic_stats(name, config_label, n_variants=None):
    """Batch-derived dynamic-instruction stats of one population.

    Runs the baseline once on the train input and derives every
    variant's dynamic instruction count through the lockstep batch
    engine (:class:`repro.sim.batch.PopulationSimulator`) — a whole
    population's dynamic overheads for the price of one simulation.
    """
    n_variants = POPULATION_SIZE if n_variants is None else n_variants
    workload = workload_for(name)
    variants = _population(name, config_label, range(n_variants))
    sim = PopulationSimulator(baseline_binary(name), workload.train_input)
    base_instrs = sim.baseline_result().instr_count
    overheads = [sim.result_for(variant).instr_count / base_instrs - 1.0
                 for variant in variants]
    return {
        "variants": n_variants,
        "baseline_instrs": base_instrs,
        "mean_instr_overhead": sum(overheads) / len(overheads),
        "max_instr_overhead": max(overheads),
        "fallbacks": len(sim.warnings),
    }


def spec_names():
    return list(SPEC_ORDER)
