"""Interpreter tests: machine-exact arithmetic, limits, edge observation."""

import pytest

from repro.errors import IRError
from repro.ir import ExecutionLimitExceeded, Interpreter, run_module
from repro.ir.instructions import evaluate_binary, evaluate_unary
from repro.minc import compile_to_ir


class TestEvaluateBinary:
    def test_add_wraps(self):
        assert evaluate_binary("add", 2**31 - 1, 1) == -(2**31)

    def test_mul_wraps(self):
        assert evaluate_binary("mul", 65536, 65536) == 0

    def test_div_truncates_toward_zero(self):
        assert evaluate_binary("div", -7, 2) == -3
        assert evaluate_binary("div", 7, -2) == -3

    def test_mod_sign_follows_dividend(self):
        assert evaluate_binary("mod", -7, 2) == -1
        assert evaluate_binary("mod", 7, -2) == 1

    def test_div_mod_by_zero_total(self):
        assert evaluate_binary("div", 5, 0) == 0
        assert evaluate_binary("mod", 5, 0) == 0

    def test_int_min_div_minus_one_wraps(self):
        assert evaluate_binary("div", -(2**31), -1) == -(2**31)

    def test_shr_is_arithmetic(self):
        assert evaluate_binary("shr", -8, 1) == -4

    def test_shift_count_masked_to_five_bits(self):
        assert evaluate_binary("shl", 1, 33) == 2

    def test_comparisons(self):
        assert evaluate_binary("lt", -1, 0) == 1
        assert evaluate_binary("ge", -1, 0) == 0
        assert evaluate_binary("eq", 5, 5) == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            evaluate_binary("pow", 2, 3)


class TestEvaluateUnary:
    def test_neg_wraps_int_min(self):
        assert evaluate_unary("neg", -(2**31)) == -(2**31)

    def test_logical_not(self):
        assert evaluate_unary("not", 0) == 1
        assert evaluate_unary("not", 99) == 0

    def test_bitwise_not(self):
        assert evaluate_unary("bnot", 0) == -1


class TestInterpreter:
    def test_step_limit(self):
        module = compile_to_ir("int main() { while (1) { } return 0; }")
        with pytest.raises(ExecutionLimitExceeded):
            run_module(module, max_steps=1000)

    def test_out_of_bounds_read_raises(self):
        module = compile_to_ir(
            "int a[4]; int main() { int i = input(); print(a[i]); "
            "return 0; }")
        with pytest.raises(IRError) as excinfo:
            run_module(module, [4])
        assert "out of bounds" in str(excinfo.value)

    def test_out_of_bounds_write_raises(self):
        module = compile_to_ir(
            "int a[4]; int main() { int i = input(); a[i] = 1; "
            "return 0; }")
        with pytest.raises(IRError):
            run_module(module, [-1])

    def test_exit_code_is_mains_return(self):
        module = compile_to_ir("int main() { return 42; }")
        assert run_module(module).exit_code == 42

    def test_exit_code_wraps(self):
        module = compile_to_ir("int main() { return 2147483647 + 1; }")
        assert run_module(module).exit_code == -(2**31)

    def test_edge_observer_sees_virtual_entry_edges(self):
        module = compile_to_ir("""
        int f() { return 1; }
        int main() { f(); f(); return 0; }
        """)
        calls = []

        def observer(function, source, target):
            if source is None:
                calls.append(function)

        Interpreter(module, edge_observer=observer).run()
        assert calls.count("f") == 2
        assert calls.count("main") == 1

    def test_edge_counts_conserve_flow(self):
        module = compile_to_ir("""
        int main() {
          int i;
          int acc = 0;
          for (i = 0; i < 10; i++) { if (i & 1) { acc += i; } }
          print(acc);
          return acc;
        }
        """)
        counts = {}

        def observer(function, source, target):
            counts[(function, source, target)] = counts.get(
                (function, source, target), 0) + 1

        Interpreter(module, edge_observer=observer).run()
        function = module.function("main")
        # Flow conservation at every non-entry, non-exit block.
        for block in function.blocks:
            inbound = sum(c for (f, s, t), c in counts.items()
                          if t == block.label and f == "main")
            outbound = sum(c for (f, s, t), c in counts.items()
                           if s == block.label and f == "main")
            terminator = block.instrs[-1]
            if not terminator.successors():  # return block
                assert inbound >= 1
            else:
                assert inbound == outbound
