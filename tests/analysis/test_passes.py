"""Verifier passes: clean sweep over real binaries, then a seeded
mutation harness proving each pass catches its own fault class."""

import dataclasses
from functools import lru_cache

import pytest

from repro.analysis import (
    recover_cfg, require_verified, verify_binary, verify_population,
)
from repro.backend.linker import link
from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.core.config import DiversificationConfig
from repro.errors import VerificationError
from repro.pipeline import ProgramBuild
from repro.workloads.registry import get_workload, workload_names
from repro.x86.instructions import Imm, Instr, Mem
from repro.x86.registers import EAX, EBX, ECX, ESP

MIX = ("429.mcf", "462.libquantum", "470.lbm")
SEEDS = (0, 1, 2)

CONFIGS = {
    "uniform-50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}


@lru_cache(maxsize=None)
def _baseline(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    return workload, build, build.link_baseline()


# -- clean sweep ------------------------------------------------------------

@pytest.mark.parametrize("name", workload_names())
def test_every_baseline_verifies_clean(name):
    _workload, _build, baseline = _baseline(name)
    report = require_verified(baseline, name=name)
    assert report.ok
    assert report.stats["unreachable_bytes"] == 0
    assert report.stats["findings_by_code"] == {}


@pytest.mark.parametrize("name", MIX)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_variants_verify_clean(name, config_name):
    workload, build, _baseline_binary = _baseline(name)
    config = CONFIGS[config_name]
    profile = (build.profile(workload.train_input)
               if config.requires_profile else None)
    for seed in SEEDS:
        variant = build.link_variant(config, seed, profile)
        report = verify_binary(variant, name=f"{name}[{seed}]")
        assert report.ok, report.describe()


def test_verify_population_matches_serial():
    _workload, _build, baseline = _baseline("470.lbm")
    reports = verify_population([baseline, baseline],
                                names=["a", "b"])
    assert [r.name for r in reports] == ["a", "b"]
    assert all(r.ok for r in reports)


# -- seeded mutation harness ------------------------------------------------
#
# Each mutation corrupts exactly one aspect of a known-good binary and
# must be caught by the matching pass (the CFG faults may legitimately
# cascade across the three structural codes, so those assert on the
# class, not one code).

def _mutate(binary, offset, payload):
    text = bytearray(binary.text)
    text[offset:offset + len(payload)] = payload
    return dataclasses.replace(binary, text=bytes(text))


def _codes(binary):
    return set(verify_binary(binary).by_code())


def test_mutated_opcode_is_caught_by_decode_pass():
    _workload, _build, baseline = _baseline("429.mcf")
    record = baseline.instr_records[10]
    mutated = _mutate(baseline, record.address - baseline.text_base,
                      b"\x06")  # not an opcode our subset decodes
    assert "verify.decode" in _codes(mutated)


def test_mutated_branch_displacement_breaks_cfg_integrity():
    _workload, _build, baseline = _baseline("429.mcf")
    cfg = recover_cfg(baseline)
    # Pick a call whose target starts with a multi-byte instruction, so
    # target+1 is provably mid-instruction (a +1 past a 1-byte push
    # would land on the next legitimate boundary and prove nothing).
    record = next(
        r for r in baseline.instr_records
        if r.mnemonic == "call" and r.size == 5
        and cfg.instrs[r.address + 5 + r.instr.operands[0].value].size > 1)
    offset = record.address - baseline.text_base
    disp = int.from_bytes(baseline.text[offset + 1:offset + 5],
                          "little", signed=True)
    mutated = _mutate(baseline, offset + 1,
                      (disp + 1).to_bytes(4, "little", signed=True))
    # Depending on how the shifted bytes re-decode this shows up as a
    # bad target, an overlap, or a decode failure — all three are the
    # CFG-integrity fault class.
    assert _codes(mutated) & {"verify.target", "verify.overlap",
                              "verify.decode"}


def test_mutated_data_displacement_is_caught_by_reloc_pass():
    _workload, _build, baseline = _baseline("429.mcf")
    cfg = recover_cfg(baseline)
    address, instr = next(
        (address, instr) for address, instr in sorted(cfg.instrs.items())
        if instr.mnemonic == "mov"
        and any(isinstance(op, Mem) and op.base is None and op.index is None
                for op in instr.operands))
    # The disp32 is the trailing field of the r/m encoding; point it
    # past the data segment.
    offset = address - baseline.text_base
    disp_at = offset + instr.size - 4
    if isinstance(instr.operands[1], Imm):  # mov [abs], imm32: disp first
        disp_at = offset + instr.size - 8
    bad = baseline.data_end + 64
    mutated = _mutate(baseline, disp_at, bad.to_bytes(4, "little"))
    assert "verify.reloc" in _codes(mutated)


def test_mutated_epilogue_is_caught_by_stack_pass():
    _workload, _build, baseline = _baseline("429.mcf")
    cfg = recover_cfg(baseline)
    address, instr = next(
        (address, instr) for address, instr in sorted(cfg.instrs.items())
        if instr.mnemonic == "add" and instr.operands[0] is ESP
        and isinstance(instr.operands[1], Imm)
        and instr.encoding[0] == 0x83)
    value = instr.operands[1].value
    patched = value + 4 if value + 4 <= 127 else value - 4
    mutated = _mutate(baseline, address - baseline.text_base + 2,
                      bytes([patched & 0xFF]))
    assert "verify.stack" in _codes(mutated)


def test_noncanonical_immediate_is_caught_by_roundtrip_pass():
    _workload, _build, baseline = _baseline("429.mcf")
    cfg = recover_cfg(baseline)
    address, instr = next(
        (address, instr) for address, instr in sorted(cfg.instrs.items())
        if instr.encoding[0] == 0x81 and instr.operands[0] is not ESP)
    # An 0x81-form immediate patched to fit 8 bits re-encodes to the
    # shorter 0x83 form: the bytes are non-canonical for our encoder.
    mutated = _mutate(baseline,
                      address - baseline.text_base + instr.size - 4,
                      (4).to_bytes(4, "little"))
    assert "verify.roundtrip" in _codes(mutated)


# -- def-before-use on hand-built code --------------------------------------

def _exit_sequence(status_reg=None):
    items = []
    if status_reg is not None:
        items.append(Instr("mov", EBX, status_reg))
    else:
        items.append(Instr("mov", EBX, Imm(0)))
    items += [Instr("mov", EAX, Imm(0)),
              Instr("int", Imm(0x80)),
              Instr("hlt")]
    return items


def _link_start(body):
    unit = ObjectUnit("t", [FunctionCode(
        "_start", [LabelDef("_start")] + body)])
    return link([unit])


def test_undefined_register_read_is_caught_by_defuse_pass():
    binary = _link_start([Instr("mov", EAX, ECX)]  # ECX: never defined
                         + _exit_sequence(EAX))
    report = verify_binary(binary, passes=("defuse",))
    assert "verify.defuse" in report.by_code()


def test_defined_register_read_passes_defuse():
    binary = _link_start([Instr("mov", ECX, Imm(7)),
                          Instr("mov", EAX, ECX)]
                         + _exit_sequence(EAX))
    report = verify_binary(binary, passes=("defuse",))
    assert report.ok, report.describe()


def test_unbalanced_ret_is_caught_by_stack_pass():
    binary = _link_start([Instr("push", EBX),
                          Instr("ret")])
    report = verify_binary(binary, passes=("stack",))
    assert "verify.stack" in report.by_code()


def test_pop_from_empty_frame_is_caught_by_stack_pass():
    binary = _link_start([Instr("pop", ECX)] + _exit_sequence())
    report = verify_binary(binary, passes=("stack",))
    assert "verify.stack" in report.by_code()


def test_require_verified_raises_typed_error():
    _workload, _build, baseline = _baseline("429.mcf")
    record = baseline.instr_records[10]
    mutated = _mutate(baseline, record.address - baseline.text_base,
                      b"\x06")
    with pytest.raises(VerificationError) as excinfo:
        require_verified(mutated, name="mutant")
    assert excinfo.value.code == "verify.failed"
    assert excinfo.value.context["by_code"]
